//! Bounded exhaustive interleaving exploration.
//!
//! A *program* is a small set of virtual threads, each a fixed sequence
//! of operations over shared state `S`. The explorer enumerates **every
//! order** in which the per-thread sequences can interleave (each
//! thread's own ops stay in program order), replays the program from a
//! fresh state along each schedule, and runs an invariant check on the
//! final state. The first violating schedule is returned verbatim so a
//! failure is a deterministic reproducer, not a flake.
//!
//! ## Why op-granularity enumeration is exhaustive here
//!
//! The explorer interleaves at *operation* boundaries — it never
//! preempts inside an op. That would be unsound against genuinely
//! lock-free code, where two ops' internal loads and stores interleave.
//! But every structure this crate explores (the crossbeam deque shim,
//! and the pool discipline built on it) holds a per-queue mutex for the
//! entire body of each public op, so each op is one atomic transition:
//! any real multi-thread execution is observationally equal to *some*
//! sequential order of ops — exactly the set this explorer enumerates.
//! The bounds (≤ 3 threads, ≤ 4 ops per thread) keep the schedule count
//! in the hundreds-to-thousands range; [`Stats::schedules`] reports the
//! exact count so tests can assert the multinomial and prove the sweep
//! really was exhaustive.

use std::fmt;

/// One virtual-thread operation over shared state `S`. Ops must be
/// re-runnable (`Fn`, not `FnOnce`): every schedule replays the program
/// from a fresh state built by the state factory.
pub type Op<S> = Box<dyn Fn(&mut S)>;

/// A set of virtual threads, each a fixed op sequence.
pub struct Program<S> {
    /// `threads[t]` is thread `t`'s ops, executed in order.
    pub threads: Vec<Vec<Op<S>>>,
}

impl<S> Program<S> {
    /// A program with no threads; add them with [`Program::thread`].
    pub fn new() -> Program<S> {
        Program {
            threads: Vec::new(),
        }
    }

    /// Append one thread's op sequence (builder style).
    pub fn thread(mut self, ops: Vec<Op<S>>) -> Program<S> {
        self.threads.push(ops);
        self
    }

    /// Number of distinct schedules — the multinomial coefficient
    /// `(Σ lens)! / Π lens!`, computed as a product of binomials (choose
    /// which slots of the remaining schedule each thread occupies).
    pub fn schedule_count(&self) -> u64 {
        let mut remaining: u64 = self.threads.iter().map(|t| t.len() as u64).sum();
        let mut count = 1u64;
        for t in &self.threads {
            count *= binomial(remaining, t.len() as u64);
            remaining -= t.len() as u64;
        }
        count
    }
}

impl<S> Default for Program<S> {
    fn default() -> Self {
        Program::new()
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k);
    let mut c = 1u64;
    for i in 0..k {
        c = c * (n - i) / (i + 1);
    }
    c
}

/// Counters from a completed exhaustive sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Schedules enumerated (= [`Program::schedule_count`]).
    pub schedules: u64,
    /// Total ops executed across all replays.
    pub steps: u64,
}

/// The first schedule whose final state failed the invariant check.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Thread ids in execution order — a deterministic reproducer.
    pub schedule: Vec<usize>,
    /// What the check reported.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated under schedule {:?}: {}",
            self.schedule, self.message
        )
    }
}

/// Enumerate every interleaving of `program`, replaying each from a
/// fresh `mk_state()` and checking the final state. Returns sweep
/// counters, or the first violating schedule.
pub fn explore<S>(
    mk_state: impl Fn() -> S,
    program: &Program<S>,
    check: impl Fn(&S) -> Result<(), String>,
) -> Result<Stats, Violation> {
    let mut counts: Vec<usize> = program.threads.iter().map(|t| t.len()).collect();
    let mut schedule = Vec::with_capacity(counts.iter().sum());
    let mut stats = Stats {
        schedules: 0,
        steps: 0,
    };
    enumerate(
        &mut counts,
        &mut schedule,
        &mut |sched| {
            let mut state = mk_state();
            let mut pc = vec![0usize; program.threads.len()];
            for &t in sched {
                (program.threads[t][pc[t]])(&mut state);
                pc[t] += 1;
                stats.steps += 1;
            }
            stats.schedules += 1;
            check(&state).map_err(|message| Violation {
                schedule: sched.to_vec(),
                message,
            })
        },
    )?;
    Ok(stats)
}

/// Depth-first generation of all orderings; `run` fires on each complete
/// schedule and short-circuits the sweep on the first violation.
fn enumerate(
    counts: &mut [usize],
    schedule: &mut Vec<usize>,
    run: &mut impl FnMut(&[usize]) -> Result<(), Violation>,
) -> Result<(), Violation> {
    if counts.iter().all(|&c| c == 0) {
        return run(schedule);
    }
    for t in 0..counts.len() {
        if counts[t] > 0 {
            counts[t] -= 1;
            schedule.push(t);
            enumerate(counts, schedule, run)?;
            schedule.pop();
            counts[t] += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_the_multinomial() {
        // 2 threads × 2 ops: C(4,2) = 6 schedules of 4 steps each.
        let program: Program<Vec<usize>> = Program::new()
            .thread(vec![
                Box::new(|s: &mut Vec<usize>| s.push(0)),
                Box::new(|s: &mut Vec<usize>| s.push(0)),
            ])
            .thread(vec![
                Box::new(|s: &mut Vec<usize>| s.push(1)),
                Box::new(|s: &mut Vec<usize>| s.push(1)),
            ]);
        assert_eq!(program.schedule_count(), 6);
        let stats = explore(Vec::new, &program, |s| {
            if s.len() == 4 {
                Ok(())
            } else {
                Err(format!("saw {} steps", s.len()))
            }
        })
        .expect("no violations");
        assert_eq!(stats.schedules, 6);
        assert_eq!(stats.steps, 24);
    }

    #[test]
    fn reports_the_first_violating_schedule() {
        // Violated exactly when thread 1 runs before thread 0.
        let program: Program<Vec<usize>> = Program::new()
            .thread(vec![Box::new(|s: &mut Vec<usize>| s.push(0))])
            .thread(vec![Box::new(|s: &mut Vec<usize>| s.push(1))]);
        let violation = explore(Vec::new, &program, |s| {
            if s == &[1, 0] {
                Err("thread 1 won the race".into())
            } else {
                Ok(())
            }
        })
        .expect_err("schedule [1,0] must be found");
        assert_eq!(violation.schedule, vec![1, 0]);
    }

    #[test]
    fn three_thread_counts() {
        let program: Program<()> = Program::new()
            .thread(vec![Box::new(|_| {}), Box::new(|_| {})])
            .thread(vec![Box::new(|_| {})])
            .thread(vec![Box::new(|_| {})]);
        // 4!/(2!·1!·1!) = 12.
        assert_eq!(program.schedule_count(), 12);
        let stats = explore(|| (), &program, |_| Ok(())).expect("ok");
        assert_eq!(stats.schedules, 12);
    }
}
