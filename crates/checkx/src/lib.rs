//! # prisma-checkx
//!
//! In-tree correctness tooling for the PRISMA reproduction. A
//! distributed database machine earns its keep with invariants —
//! fragments never lose tuples, workers never run a morsel twice,
//! two-phase locking never self-deadlocks the engine — and this crate
//! makes three classes of them *checked* rather than hoped for:
//!
//! 1. **Lock-order deadlock analysis** (dynamic). Every `Mutex`/`RwLock`
//!    in the workspace resolves to the in-tree `parking_lot` shim, whose
//!    [`parking_lot::lock_order`] recorder — armed via
//!    `CHECKX_LOCK_ORDER=1` — builds a global lock-order graph from real
//!    executions and reports any cycle as a potential deadlock, with the
//!    acquisition backtraces of both sides of the inversion. CI runs the
//!    whole tier-1 suite under the recorder, so a new `A→B` ordering that
//!    contradicts an existing `B→A` anywhere in the suite fails the
//!    build even if that run never actually deadlocked.
//!
//! 2. **Bounded interleaving exploration** ([`explore`]). A loom-style
//!    deterministic scheduler that replays every interleaving of small
//!    virtual-thread programs against the *real* work-stealing deque
//!    shim and the *real* worker-pool acquisition discipline
//!    (`prisma_poolx::PoolHarness` drives the same `next_task` code the
//!    production `worker_loop` runs). Because the shims are
//!    mutex-per-queue, each public queue op is atomic — so enumerating
//!    op-granularity schedules is *exhaustive* over observable thread
//!    interleavings at these bounds, not a sample. [`scenarios`] holds
//!    the sequential-spec oracles and a known-buggy deque variant the
//!    explorer must refute (proof the harness can see real races).
//!
//! 3. **Project-invariant lint** ([`lint`], `checkx-lint` binary). A
//!    lexer-level linter for rules rustc cannot express: no
//!    `unwrap()`/`expect()` on lock/channel/wire-decode results outside
//!    tests, exhaustive `GdhMsg` handling in the actor loops, no
//!    wall-clock reads in simulation-deterministic paths, and a
//!    fingerprint pinning the wire-format constants to the `PCB1`
//!    version tag so a format change without a version bump is caught at
//!    lint time. Suppress a finding with `// checkx:allow(<rule>)` on
//!    the same or preceding line.
//!
//! Run `cargo test -p prisma-checkx` for the explorer and fixtures,
//! `cargo run -p prisma-checkx --bin checkx-lint` for the linter, and
//! `CHECKX_LOCK_ORDER=1 cargo test` for the instrumented suite.

pub mod explore;
pub mod lint;
pub mod scenarios;
