//! Linter self-tests: every rule driven over fixture sources with known
//! violations (and known non-violations), plus the workspace-clean gate
//! — the same zero-findings bar CI enforces, kept inside `cargo test`
//! so a violation fails the tier-1 suite even without the CI lane.

use std::path::Path;

use prisma_checkx::lint::{
    self, gdhmsg_exhaustive, lex, sync_unwrap, wall_clock, wire_constants_hash, wire_fingerprint,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn sync_unwrap_flags_locks_and_channels_not_options() {
    let lexed = lex(&fixture("sync_unwrap.rs"));
    let findings = sync_unwrap(Path::new("sync_unwrap.rs"), &lexed);
    let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    // Exactly the two seeded violations: the bare `.lock().unwrap()` and
    // the `.recv().expect(..)`. The suppressed one, the Option unwrap,
    // the free function, the string decoy, and the #[cfg(test)] module
    // must all stay silent.
    assert_eq!(lines, vec![5, 9], "findings: {findings:#?}");
    assert!(findings[0].message.contains("lock"), "{}", findings[0]);
    assert!(findings[1].message.contains("recv"), "{}", findings[1]);
}

#[test]
fn wall_clock_flags_now_reads_not_types() {
    let lexed = lex(&fixture("wall_clock.rs"));
    let findings = wall_clock(Path::new("wall_clock.rs"), &lexed);
    let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
    // Instant::now and SystemTime::now; the allowed one and the
    // type-position mentions stay silent.
    assert_eq!(lines, vec![7, 11], "findings: {findings:#?}");
}

#[test]
fn gdhmsg_rule_sees_through_wildcard_arms() {
    let lexed = lex(&fixture("gdhmsg_partial.rs"));
    let path = Path::new("gdhmsg_partial.rs");
    let findings = gdhmsg_exhaustive((path, &lexed), (path, &lexed), &[(path, &lexed)]);
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    assert!(
        findings[0].message.contains("GdhMsg::Cancel"),
        "{}",
        findings[0]
    );
    // Dispatching Cancel explicitly clears the finding.
    let fixed = fixture("gdhmsg_partial.rs").replace("_ => {}", "GdhMsg::Cancel(_) => {}");
    let lexed = lex(&fixed);
    let findings = gdhmsg_exhaustive((path, &lexed), (path, &lexed), &[(path, &lexed)]);
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn wire_fingerprint_pins_the_constants() {
    let base = "const MAGIC: &[u8; 4] = b\"PCB1\";\nconst TAG_INT_RAW: u8 = 0;\n";
    let hash = format!("{:016x}", wire_constants_hash(&lex(base).toks));
    let path = Path::new("wire.rs");

    // Pinned correctly: clean.
    let good = format!("// checkx:wire-fingerprint {hash}\n{base}");
    assert!(wire_fingerprint(path, &lex(&good)).is_empty());

    // Constant changed under an unchanged pin: flagged.
    let drifted = good.replace("TAG_INT_RAW: u8 = 0", "TAG_INT_RAW: u8 = 9");
    let findings = wire_fingerprint(path, &lex(&drifted));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("version tag"), "{}", findings[0]);

    // Reformatting (whitespace only) does not change the fingerprint.
    let reformatted = good.replace("const MAGIC: &[u8; 4] = b\"PCB1\";", "const MAGIC : &[u8;4]=b\"PCB1\" ;");
    assert!(wire_fingerprint(path, &lex(&reformatted)).is_empty());

    // No directive at all: flagged with the hash to pin.
    let findings = wire_fingerprint(path, &lex(base));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains(&hash), "{}", findings[0]);
}

#[test]
fn workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/checkx → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let sources = lint::collect_sources(root).expect("collect workspace sources");
    assert!(sources.len() > 50, "walker found only {} files", sources.len());
    let findings = lint::run_all(&sources);
    assert!(
        findings.is_empty(),
        "checkx-lint findings in the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
