//! Lint fixture: wall-clock reads in a (pretend) deterministic path.
//! Never compiled — lexed by tests/lint_fixtures.rs.

use std::time::{Instant, SystemTime};

fn bad_instant() -> Instant {
    Instant::now() // FINDING: line 7
}

fn bad_system_time() -> SystemTime {
    SystemTime::now() // FINDING: line 11
}

fn allowed_instant() -> Instant {
    // checkx:allow(wall-clock) — metrics only, never in a decision
    Instant::now()
}

fn instant_type_only(t: Instant) -> Instant {
    t // naming the type without ::now is fine
}
