//! Lint fixture: a miniature GdhMsg protocol whose dispatch forgets one
//! variant. Never compiled — lexed by tests/lint_fixtures.rs.

pub enum GdhMsg {
    /// Handled below.
    Query(String),
    /// Handled below.
    Ack { seq: u64 },
    /// Forgotten by the dispatch: the rule must flag this one.
    Cancel(u64),
}

pub fn dispatch(msg: GdhMsg) {
    match msg {
        GdhMsg::Query(_) => {}
        GdhMsg::Ack { .. } => {}
        // A wildcard "handles" Cancel as far as rustc is concerned —
        // exactly the drift the gdhmsg-exhaustive rule exists to catch.
        _ => {}
    }
}
