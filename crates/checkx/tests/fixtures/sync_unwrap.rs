//! Lint fixture: sync-unwrap violations and non-violations.
//! Never compiled — lexed by tests/lint_fixtures.rs.

fn bad_lock(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // FINDING: line 5
}

fn bad_recv(rx: &crossbeam::channel::Receiver<u32>) -> u32 {
    rx.recv().expect("peer gone") // FINDING: line 9
}

fn suppressed(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // checkx:allow(sync-unwrap) — poisoning is fatal here by design
}

fn unrelated_unwrap(o: Option<u32>) -> u32 {
    o.unwrap() // not a sync method: no finding
}

fn free_fn_named_send() -> u32 {
    fn send() -> Option<u32> {
        Some(1)
    }
    send().unwrap() // not a method call: no finding
}

fn string_decoy() -> &'static str {
    "x.lock().unwrap()" // inside a string: no finding
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        let m = std::sync::Mutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
