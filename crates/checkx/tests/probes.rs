//! Probe coverage: the yield-point hooks in the crossbeam deque shim
//! and the pool discipline fire on a *real threaded* pool run. This
//! pins the instrumentation the explorer's exhaustiveness argument
//! leans on — if someone removes a probe (or reroutes the pool off the
//! instrumented queue ops), this test fails before the explorer's
//! coverage silently narrows.
//!
//! Own file: the hook registry is process-global, and no other test in
//! this binary may race it.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use prisma_poolx::{Job, WorkerPool};

#[test]
fn pool_run_crosses_every_scheduling_probe() {
    static SEEN: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    crossbeam::hooks::set_hook(|point| {
        SEEN.lock().unwrap_or_else(|e| e.into_inner()).insert(point);
    });

    let pool = WorkerPool::new(2);
    let counter = AtomicUsize::new(0);
    let jobs: Vec<Job> = (0..64)
        .map(|_| {
            Box::new(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            }) as Job
        })
        .collect();
    pool.run(jobs);
    drop(pool);
    crossbeam::hooks::clear_hook();
    assert_eq!(counter.load(Ordering::Relaxed), 64);

    let seen = SEEN.lock().unwrap_or_else(|e| e.into_inner());
    // Deterministically crossed on any completed run: scatter pushes to
    // mailboxes, every acquisition round drains (injector steal →
    // worker push), pops, and the round itself announces drain/pop.
    for point in [
        "deque.injector.push",
        "deque.injector.steal",
        "deque.worker.push",
        "deque.worker.pop",
        "pool.drain",
        "pool.pop",
    ] {
        assert!(seen.contains(point), "probe {point} never fired: {seen:?}");
    }
}
