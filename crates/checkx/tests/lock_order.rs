//! Seeded lock-inversion fixture: proves the lock-order recorder in the
//! parking_lot shim actually fires, and precisely characterizes what it
//! reports. If the detector is ever disabled or broken, the asserts on
//! `cycle_reports()` fail — this test *is* the detector's detector.
//!
//! Everything lives in one `#[test]` because the recorder's graph and
//! mode are process-global: the Rust test runner would otherwise
//! interleave sections on different threads.

use std::panic::{catch_unwind, AssertUnwindSafe};

use parking_lot::lock_order::{self, Mode};
use parking_lot::Mutex;

#[test]
fn seeded_inversion_is_reported_with_both_backtraces() {
    // --- Record mode: the seeded ABBA inversion must produce a report.
    lock_order::set_mode(Mode::Record);
    lock_order::reset();

    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Thread-order 1: A then B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    assert!(
        lock_order::cycle_reports().is_empty(),
        "a single ordering must not report"
    );
    assert_eq!(lock_order::edge_count(), 1, "one A→B edge");

    // Thread-order 2: B then A — closes the cycle. Run on another thread
    // as a real inversion would be; the graph is global, the held stacks
    // are per-thread.
    std::thread::spawn(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    })
    .join()
    .expect("inversion thread");

    let reports = lock_order::cycle_reports();
    assert_eq!(reports.len(), 1, "exactly one cycle: {reports:?}");
    let r = &reports[0];
    // The two-lock inversion: both sites on the cycle, and *both*
    // acquisition backtraces present (A-held-acquiring-B and
    // B-held-acquiring-A).
    assert!(r.sites.len() >= 2, "cycle over both sites: {:?}", r.sites);
    assert_eq!(r.edges.len(), 2, "both halves of the ABBA pair");
    for e in &r.edges {
        assert!(
            !e.backtrace.is_empty(),
            "edge {}→{} must carry its acquisition backtrace",
            e.held,
            e.acquired
        );
    }
    let rendered = r.render();
    assert!(rendered.contains("potential deadlock"), "{rendered}");

    // --- No false positives: a consistent order never reports.
    lock_order::reset();
    let c = Mutex::new(0u32);
    let d = Mutex::new(0u32);
    for _ in 0..3 {
        let _gc = c.lock();
        let _gd = d.lock();
    }
    assert!(lock_order::cycle_reports().is_empty());

    // --- try_lock is never the blocking half of a deadlock: a
    // successful try_lock acquisition adds no edge of its own.
    lock_order::reset();
    let e = Mutex::new(0u32);
    let f = Mutex::new(0u32);
    {
        let _ge = e.lock();
        let _gf = f.lock(); // E→F
    }
    {
        let _gf = f.lock();
        let _ge = e.try_lock().expect("uncontended"); // would be F→E
    }
    assert!(
        lock_order::cycle_reports().is_empty(),
        "try_lock closed a cycle it cannot cause"
    );

    // --- Panic mode: the CI lane's behavior — the acquisition that
    // closes a cycle panics with the full report.
    lock_order::reset();
    lock_order::set_mode(Mode::Panic);
    let g = std::sync::Arc::new(Mutex::new(0u32));
    let h = std::sync::Arc::new(Mutex::new(0u32));
    {
        let _gg = g.lock();
        let _gh = h.lock();
    }
    let (g2, h2) = (g.clone(), h.clone());
    let panicked = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(|| {
            let _gh = h2.lock();
            let _gg = g2.lock();
        }))
        .is_err()
    })
    .join()
    .expect("panic-mode thread");
    assert!(panicked, "Panic mode must abort the closing acquisition");

    // Leave the process with the recorder off for any later test binary
    // reusing this process (none today; cheap insurance).
    lock_order::set_mode(Mode::Off);
    lock_order::reset();
}
