//! Exhaustive bounded interleaving runs against the *real* deque shim
//! and the *real* pool acquisition discipline — plus the refutation
//! test: a deliberately buggy deque variant the explorer must catch,
//! proving the harness detects schedule-dependent bugs rather than
//! rubber-stamping whatever it is given.

use prisma_checkx::explore::{explore, Program};
use prisma_checkx::scenarios::{
    buggy_deque, check_pool, op_step, pool_state, real_deque, DequeState, StaleEmptyStealer,
};

type RealDeque = DequeState<crossbeam::deque::Stealer<u32>>;
type BuggyDeque = DequeState<StaleEmptyStealer>;

#[test]
fn real_deque_is_linearizable_owner_vs_thief() {
    // Owner: push, push, pop, pop. Thief: 4 steals. Every op is checked
    // against the sequential spec in schedule order — 70 schedules.
    let program: Program<RealDeque> = Program::new()
        .thread(vec![
            RealDeque::op_push(1),
            RealDeque::op_push(2),
            RealDeque::op_pop(),
            RealDeque::op_pop(),
        ])
        .thread(vec![
            RealDeque::op_steal(),
            RealDeque::op_steal(),
            RealDeque::op_steal(),
            RealDeque::op_steal(),
        ]);
    assert_eq!(program.schedule_count(), 70);
    let stats = explore(real_deque, &program, RealDeque::check)
        .unwrap_or_else(|v| panic!("real deque refuted: {v}"));
    assert_eq!(stats.schedules, 70, "sweep must be exhaustive");
}

#[test]
fn real_deque_is_linearizable_three_threads() {
    // Owner plus two thief threads (the stealer end is stateless, so
    // two virtual thieves share one handle) — 30 schedules.
    let program: Program<RealDeque> = Program::new()
        .thread(vec![
            RealDeque::op_push(1),
            RealDeque::op_push(2),
            RealDeque::op_pop(),
            RealDeque::op_pop(),
        ])
        .thread(vec![RealDeque::op_steal()])
        .thread(vec![RealDeque::op_steal()]);
    assert_eq!(program.schedule_count(), 30);
    let stats = explore(real_deque, &program, RealDeque::check)
        .unwrap_or_else(|v| panic!("real deque refuted: {v}"));
    assert_eq!(stats.schedules, 30);
}

#[test]
fn buggy_deque_is_refuted_on_the_exact_racing_schedule() {
    // The stale-empty cache is only wrong when a steal observes empty
    // *before* the owner's push and another steal follows: schedule
    // [thief, owner, thief]. Unit-test-shaped schedules ([owner first]
    // or [thief twice first]) pass — which is exactly why this bug
    // class needs exhaustive interleaving, not examples.
    let program: Program<BuggyDeque> = Program::new()
        .thread(vec![BuggyDeque::op_push(7)])
        .thread(vec![BuggyDeque::op_steal(), BuggyDeque::op_steal()]);
    let violation = explore(buggy_deque, &program, BuggyDeque::check)
        .expect_err("the explorer must refute the stale-empty stealer");
    assert_eq!(violation.schedule, vec![1, 0, 1], "{violation}");
    assert!(violation.message.contains("steal"), "{violation}");

    // The identical program over the real stealer is clean — the
    // refutation is the bug's, not the harness's.
    let program: Program<RealDeque> = Program::new()
        .thread(vec![RealDeque::op_push(7)])
        .thread(vec![RealDeque::op_steal(), RealDeque::op_steal()]);
    explore(real_deque, &program, RealDeque::check)
        .unwrap_or_else(|v| panic!("real deque refuted: {v}"));
}

#[test]
fn pool_never_loses_or_doubles_a_job_two_workers() {
    // 2 virtual workers × 4 acquisition rounds over 4 scattered jobs:
    // every one of the 70 interleavings must execute each job exactly
    // once and drive the batch to remaining == 0.
    let program: Program<_> = Program::new()
        .thread((0..4).map(|_| op_step(0)).collect())
        .thread((0..4).map(|_| op_step(1)).collect());
    assert_eq!(program.schedule_count(), 70);
    let stats = explore(|| pool_state(2, 4, None), &program, check_pool(false))
        .unwrap_or_else(|v| panic!("pool invariant refuted: {v}"));
    assert_eq!(stats.schedules, 70);
}

#[test]
fn pool_never_loses_or_doubles_a_job_three_workers() {
    // 3 workers × 3 rounds over 3 jobs — 1680 schedules, the top of the
    // stated bounds (≤ 3 threads).
    let program: Program<_> = Program::new()
        .thread((0..3).map(|_| op_step(0)).collect())
        .thread((0..3).map(|_| op_step(1)).collect())
        .thread((0..3).map(|_| op_step(2)).collect());
    assert_eq!(program.schedule_count(), 1680);
    let stats = explore(|| pool_state(3, 3, None), &program, check_pool(false))
        .unwrap_or_else(|v| panic!("pool invariant refuted: {v}"));
    assert_eq!(stats.schedules, 1680);
}

#[test]
fn pool_panic_propagation_under_every_schedule() {
    // Job 1 of 3 panics. Under every interleaving: the panic is
    // contained by the pool's own catch, the other jobs still run
    // exactly once, the batch completes, and the panicked flag (what
    // `WorkerPool::run` re-raises from) is set.
    let program: Program<_> = Program::new()
        .thread((0..3).map(|_| op_step(0)).collect())
        .thread((0..3).map(|_| op_step(1)).collect());
    assert_eq!(program.schedule_count(), 20);
    let stats = explore(
        || pool_state(2, 3, Some(1)),
        &program,
        check_pool(true),
    )
    .unwrap_or_else(|v| panic!("panic propagation refuted: {v}"));
    assert_eq!(stats.schedules, 20);
}
