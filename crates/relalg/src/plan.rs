//! Logical plans: the extended relational algebra tree.

use std::fmt;

use prisma_storage::expr::ScalarExpr;
use prisma_types::{Column, DataType, PrismaError, Result, Schema, Tuple};

use crate::agg::AggExpr;

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Matching pairs, concatenated.
    Inner,
    /// Left tuples with at least one match (output = left schema).
    Semi,
    /// Left tuples with no match (output = left schema).
    Anti,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "Join",
            JoinKind::Semi => "SemiJoin",
            JoinKind::Anti => "AntiJoin",
        };
        f.write_str(s)
    }
}

/// The algebra tree.
///
/// Leaf schemas are embedded (`Scan`, `Values`); inner nodes derive theirs
/// structurally via [`LogicalPlan::output_schema`]. The recursive
/// extensions required by PRISMAlog are [`LogicalPlan::Closure`] (the
/// paper's per-OFM transitive-closure operator) and
/// [`LogicalPlan::Fixpoint`] (general linear recursion evaluated
/// semi-naively: inside `step`, `Scan(name)` reads the accumulated result
/// and `Scan("Δ" + name)` reads the last iteration's delta).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Read a named base relation (or a fixpoint binding).
    Scan {
        /// Relation name in the data dictionary.
        relation: String,
        /// Schema as resolved by the front end.
        schema: Schema,
    },
    /// Literal rows.
    Values {
        /// Schema of the rows.
        schema: Schema,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// σ — keep tuples satisfying the predicate.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Filter predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// π — compute output expressions.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column, over the input schema.
        exprs: Vec<ScalarExpr>,
        /// Output schema (names chosen by the planner).
        schema: Schema,
    },
    /// ⋈ — equi-join with optional residual predicate.
    Join {
        /// Build/probe inputs.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join flavour.
        kind: JoinKind,
        /// Equi-join key pairs `(left ordinal, right ordinal)`.
        on: Vec<(usize, usize)>,
        /// Extra predicate over the concatenated schema (theta part).
        residual: Option<ScalarExpr>,
    },
    /// ∪ — union; `all` keeps duplicates (SQL UNION ALL).
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Bag semantics when true.
        all: bool,
    },
    /// − — set difference (left \ right).
    Difference {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// δ — duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// γ — grouping and aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column ordinals (empty = one global group).
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Sort by `(column, ascending)` keys.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Keep the first `n` tuples.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
    /// Transitive closure of a binary relation — the OFM operator of §2.5.
    Closure {
        /// Input plan; must produce a 2-column relation whose columns are
        /// union-compatible.
        input: Box<LogicalPlan>,
    },
    /// Semi-naive linear fixpoint (PRISMAlog recursion).
    Fixpoint {
        /// Name the recursive relation is bound to inside `step`.
        name: String,
        /// Non-recursive base case.
        base: Box<LogicalPlan>,
        /// Recursive step; may scan `name` (accumulated) and `Δname`
        /// (delta).
        step: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Convenience scan.
    pub fn scan(relation: impl Into<String>, schema: Schema) -> LogicalPlan {
        LogicalPlan::Scan {
            relation: relation.into(),
            schema,
        }
    }

    /// Convenience select.
    pub fn select(self, predicate: ScalarExpr) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Convenience projection by column ordinals (names preserved).
    pub fn project_cols(self, cols: &[usize]) -> Result<LogicalPlan> {
        let in_schema = self.output_schema()?;
        let schema = in_schema.project(cols);
        Ok(LogicalPlan::Project {
            input: Box::new(self),
            exprs: cols.iter().map(|&i| ScalarExpr::Col(i)).collect(),
            schema,
        })
    }

    /// Convenience inner equi-join.
    pub fn join(self, right: LogicalPlan, on: Vec<(usize, usize)>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on,
            residual: None,
        }
    }

    /// Output schema, derived structurally.
    pub fn output_schema(&self) -> Result<Schema> {
        Ok(match self {
            LogicalPlan::Scan { schema, .. } | LogicalPlan::Values { schema, .. } => {
                schema.clone()
            }
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.output_schema()?,
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Join {
                left, right, kind, ..
            } => match kind {
                JoinKind::Inner => left.output_schema()?.join(&right.output_schema()?),
                JoinKind::Semi | JoinKind::Anti => left.output_schema()?,
            },
            LogicalPlan::Union { left, .. } => left.output_schema()?,
            LogicalPlan::Difference { left, .. } => left.output_schema()?,
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.output_schema()?;
                let mut cols: Vec<Column> = group_by
                    .iter()
                    .map(|&i| {
                        in_schema.column(i).cloned().ok_or_else(|| {
                            PrismaError::ExprType(format!("group-by ordinal {i} out of range"))
                        })
                    })
                    .collect::<Result<_>>()?;
                for a in aggs {
                    let in_ty = if a.func == crate::agg::AggFunc::CountStar {
                        DataType::Int
                    } else {
                        in_schema
                            .column(a.col)
                            .map(|c| c.dtype)
                            .ok_or_else(|| {
                                PrismaError::ExprType(format!(
                                    "aggregate ordinal {} out of range",
                                    a.col
                                ))
                            })?
                    };
                    cols.push(Column::nullable(a.name.clone(), a.output_type(in_ty)?));
                }
                Schema::new(cols)
            }
            LogicalPlan::Closure { input } => input.output_schema()?,
            LogicalPlan::Fixpoint { base, .. } => base.output_schema()?,
        })
    }

    /// Validate the whole tree: schema derivation succeeds, predicates and
    /// expressions type-check, unions are compatible, closures are binary.
    pub fn validate(&self) -> Result<Schema> {
        let schema = self.output_schema()?;
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Values { schema, rows } => {
                for r in rows {
                    schema.check_tuple(r.values())?;
                }
            }
            LogicalPlan::Select { input, predicate } => {
                let in_schema = input.validate()?;
                let t = predicate.check(&in_schema)?;
                if t != DataType::Bool {
                    return Err(PrismaError::ExprType(format!(
                        "selection predicate has type {t}"
                    )));
                }
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let in_schema = input.validate()?;
                if exprs.len() != schema.arity() {
                    return Err(PrismaError::ArityMismatch {
                        expected: schema.arity(),
                        got: exprs.len(),
                    });
                }
                for e in exprs {
                    e.check(&in_schema)?;
                }
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
                ..
            } => {
                let ls = left.validate()?;
                let rs = right.validate()?;
                for &(l, r) in on {
                    if l >= ls.arity() || r >= rs.arity() {
                        return Err(PrismaError::ExprType(format!(
                            "join key ({l},{r}) out of range"
                        )));
                    }
                }
                if let Some(p) = residual {
                    p.check(&ls.join(&rs))?;
                }
            }
            LogicalPlan::Union { left, right, .. } | LogicalPlan::Difference { left, right } => {
                let ls = left.validate()?;
                let rs = right.validate()?;
                if !ls.union_compatible(&rs) {
                    return Err(PrismaError::ExprType(format!(
                        "union-incompatible inputs {ls} vs {rs}"
                    )));
                }
            }
            LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => {
                input.validate()?;
            }
            LogicalPlan::Aggregate { input, .. } => {
                input.validate()?;
            }
            LogicalPlan::Closure { input } => {
                let s = input.validate()?;
                if s.arity() != 2 {
                    return Err(PrismaError::ExprType(format!(
                        "transitive closure needs a binary relation, got arity {}",
                        s.arity()
                    )));
                }
                let (a, b) = (s.column(0).expect("arity 2"), s.column(1).expect("arity 2"));
                if a.dtype != b.dtype {
                    return Err(PrismaError::ExprType(
                        "closure columns must share a type".into(),
                    ));
                }
            }
            LogicalPlan::Fixpoint { base, step, .. } => {
                let bs = base.validate()?;
                let ss = step.validate()?;
                if !bs.union_compatible(&ss) {
                    return Err(PrismaError::ExprType(
                        "fixpoint base and step are union-incompatible".into(),
                    ));
                }
            }
        }
        Ok(schema)
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Closure { input } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::Union { left, right, .. }
            | LogicalPlan::Difference { left, right } => vec![left, right],
            LogicalPlan::Fixpoint { base, step, .. } => vec![base, step],
        }
    }

    /// Bottom-up rewrite: children first, then `f` on the rebuilt node.
    pub fn transform_up(&self, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
        let rebuilt = match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => self.clone(),
            LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
                input: Box::new(input.transform_up(f)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
                input: Box::new(input.transform_up(f)),
                exprs: exprs.clone(),
                schema: schema.clone(),
            },
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => LogicalPlan::Join {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                kind: *kind,
                on: on.clone(),
                residual: residual.clone(),
            },
            LogicalPlan::Union { left, right, all } => LogicalPlan::Union {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                all: *all,
            },
            LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.transform_up(f)),
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.transform_up(f)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.transform_up(f)),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.transform_up(f)),
                n: *n,
            },
            LogicalPlan::Closure { input } => LogicalPlan::Closure {
                input: Box::new(input.transform_up(f)),
            },
            LogicalPlan::Fixpoint { name, base, step } => LogicalPlan::Fixpoint {
                name: name.clone(),
                base: Box::new(base.transform_up(f)),
                step: Box::new(step.transform_up(f)),
            },
        };
        f(rebuilt)
    }

    /// Names of all base relations scanned (ignores fixpoint-internal
    /// bindings).
    pub fn scanned_relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_scans(&mut out, &mut Vec::new());
        out.sort();
        out.dedup();
        out
    }

    fn collect_scans(&self, out: &mut Vec<String>, bound: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { relation, .. } => {
                let delta = relation.strip_prefix('Δ').unwrap_or(relation);
                if !bound.iter().any(|b| b == relation || b == delta) {
                    out.push(relation.clone());
                }
            }
            LogicalPlan::Fixpoint { name, base, step } => {
                base.collect_scans(out, bound);
                bound.push(name.clone());
                step.collect_scans(out, bound);
                bound.pop();
            }
            _ => {
                for c in self.children() {
                    c.collect_scans(out, bound);
                }
            }
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { relation, .. } => writeln!(f, "{pad}Scan {relation}")?,
            LogicalPlan::Values { rows, .. } => writeln!(f, "{pad}Values [{} rows]", rows.len())?,
            LogicalPlan::Select { predicate, .. } => writeln!(f, "{pad}Select {predicate}")?,
            LogicalPlan::Project { exprs, schema, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .zip(schema.columns())
                    .map(|(e, c)| format!("{e} AS {}", c.name))
                    .collect();
                writeln!(f, "{pad}Project {}", cols.join(", "))?;
            }
            LogicalPlan::Join { kind, on, residual, .. } => {
                let keys: Vec<String> =
                    on.iter().map(|(l, r)| format!("l#{l}=r#{r}")).collect();
                write!(f, "{pad}{kind} on [{}]", keys.join(", "))?;
                if let Some(p) = residual {
                    write!(f, " filter {p}")?;
                }
                writeln!(f)?;
            }
            LogicalPlan::Union { all, .. } => {
                writeln!(f, "{pad}Union{}", if *all { "All" } else { "" })?
            }
            LogicalPlan::Difference { .. } => writeln!(f, "{pad}Difference")?,
            LogicalPlan::Distinct { .. } => writeln!(f, "{pad}Distinct")?,
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let names: Vec<String> = aggs.iter().map(|a| format!("{}", a.func)).collect();
                writeln!(f, "{pad}Aggregate group={group_by:?} aggs=[{}]", names.join(", "))?;
            }
            LogicalPlan::Sort { keys, .. } => writeln!(f, "{pad}Sort {keys:?}")?,
            LogicalPlan::Limit { n, .. } => writeln!(f, "{pad}Limit {n}")?,
            LogicalPlan::Closure { .. } => writeln!(f, "{pad}TransitiveClosure")?,
            LogicalPlan::Fixpoint { name, .. } => writeln!(f, "{pad}Fixpoint {name}")?,
        }
        for c in self.children() {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use prisma_storage::expr::CmpOp;
    use prisma_types::tuple;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("dept", DataType::Int),
            Column::new("salary", DataType::Double),
        ])
    }

    fn dept_schema() -> Schema {
        Schema::new(vec![
            Column::new("dept_id", DataType::Int),
            Column::new("name", DataType::Str),
        ])
    }

    #[test]
    fn join_schema_concatenates() {
        let p = LogicalPlan::scan("emp", emp_schema()).join(
            LogicalPlan::scan("dept", dept_schema()),
            vec![(1, 0)],
        );
        let s = p.output_schema().unwrap();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.column(3).unwrap().name, "dept_id");
        p.validate().unwrap();
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let p = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("emp", emp_schema())),
            right: Box::new(LogicalPlan::scan("dept", dept_schema())),
            kind: JoinKind::Semi,
            on: vec![(1, 0)],
            residual: None,
        };
        assert_eq!(p.output_schema().unwrap().arity(), 3);
    }

    #[test]
    fn aggregate_schema() {
        let p = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("emp", emp_schema())),
            group_by: vec![1],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Avg, 2, "avg_sal"),
            ],
        };
        let s = p.output_schema().unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).unwrap().name, "dept");
        assert_eq!(s.column(2).unwrap().dtype, DataType::Double);
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_plans() {
        // Ill-typed predicate.
        let p = LogicalPlan::scan("emp", emp_schema())
            .select(ScalarExpr::col(0));
        assert!(p.validate().is_err());
        // Union incompatible.
        let u = LogicalPlan::Union {
            left: Box::new(LogicalPlan::scan("emp", emp_schema())),
            right: Box::new(LogicalPlan::scan("dept", dept_schema())),
            all: false,
        };
        assert!(u.validate().is_err());
        // Closure over non-binary relation.
        let c = LogicalPlan::Closure {
            input: Box::new(LogicalPlan::scan("emp", emp_schema())),
        };
        assert!(c.validate().is_err());
        // Join key out of range.
        let j = LogicalPlan::scan("emp", emp_schema()).join(
            LogicalPlan::scan("dept", dept_schema()),
            vec![(9, 0)],
        );
        assert!(j.validate().is_err());
        // Bad values row.
        let v = LogicalPlan::Values {
            schema: dept_schema(),
            rows: vec![tuple![1, 2]],
        };
        assert!(v.validate().is_err());
    }

    #[test]
    fn scanned_relations_skips_fixpoint_bindings() {
        let edge = Schema::new(vec![
            Column::new("src", DataType::Int),
            Column::new("dst", DataType::Int),
        ]);
        let p = LogicalPlan::Fixpoint {
            name: "path".into(),
            base: Box::new(LogicalPlan::scan("edge", edge.clone())),
            step: Box::new(
                LogicalPlan::scan("Δpath", edge.clone())
                    .join(LogicalPlan::scan("edge", edge.clone()), vec![(1, 0)])
                    .project_cols(&[0, 3])
                    .unwrap(),
            ),
        };
        assert_eq!(p.scanned_relations(), vec!["edge".to_string()]);
    }

    #[test]
    fn transform_up_rewrites_leaves() {
        let p = LogicalPlan::scan("emp", emp_schema()).select(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(10.0),
        ));
        let renamed = p.transform_up(&mut |node| match node {
            LogicalPlan::Scan { schema, .. } => LogicalPlan::scan("emp_v2", schema),
            other => other,
        });
        assert_eq!(renamed.scanned_relations(), vec!["emp_v2".to_string()]);
    }

    #[test]
    fn display_is_indented_tree() {
        let p = LogicalPlan::scan("emp", emp_schema())
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit(10.0),
            ));
        let txt = p.to_string();
        assert!(txt.starts_with("Select"));
        assert!(txt.contains("\n  Scan emp"));
    }
}
