//! Physical plans: the executable operator tree.
//!
//! A [`PhysicalPlan`] is lowered from a [`LogicalPlan`] and names the
//! *algorithm* for each algebra node: scans carry fused projections,
//! equi-joins become hash joins annotated with a distribution
//! [`JoinStrategy`], theta joins become nested loops, and aggregation is
//! explicitly hash-based. The tree is what the Global Data Handler ships
//! to One-Fragment Managers (paper §2.2: subqueries are sent to the OFMs,
//! which execute them against their fragment) and what the batch executor
//! in [`crate::exec`] pulls tuples through.
//!
//! The lowering is strategy-parameterized: [`lower`] picks the default
//! (broadcast) distribution for every join, while the optimizer's physical
//! pass supplies a cardinality-driven chooser via [`lower_with`].

use std::fmt;

use prisma_storage::expr::ScalarExpr;
use prisma_types::{FragmentId, PrismaError, Result, Schema, Tuple};

use crate::agg::AggExpr;
use crate::plan::{JoinKind, LogicalPlan};

/// How a distributed join moves its inputs (paper §2.4's "applying
/// parallelism" rule family). Local, single-fragment execution ignores
/// the annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Materialize the small side once and send a copy to every fragment
    /// of the large side.
    Broadcast,
    /// Hash-partition both sides on the join key and join bucket-by-bucket
    /// (grace join) — chosen when both sides are large.
    Partitioned,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::Broadcast => "broadcast",
            JoinStrategy::Partitioned => "partitioned",
        })
    }
}

/// Where each hash bucket of a partitioned (grace) join is joined: the
/// optimizer's **shuffle placement map**, naming the phase-2 site
/// fragment per bucket so phase-1 repartition streams can be addressed
/// fragment→fragment — the coordinator orchestrates but never relays
/// tuples (paper §2.2: subqueries run where the data is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShufflePlacement {
    /// Bucket count both sides hash into.
    pub parts: usize,
    /// Owning (phase-2 site) fragment per bucket; length `parts`.
    pub sites: Vec<FragmentId>,
}

impl ShufflePlacement {
    /// Round-robin buckets over the site fragments (the default layout:
    /// every site joins ⌈parts/sites⌉ buckets).
    pub fn round_robin(parts: usize, site_fragments: &[FragmentId]) -> ShufflePlacement {
        assert!(!site_fragments.is_empty(), "a shuffle needs at least one site");
        ShufflePlacement {
            parts,
            sites: (0..parts)
                .map(|j| site_fragments[j % site_fragments.len()])
                .collect(),
        }
    }

    /// The distinct sites in first-bucket order, each with the buckets it
    /// owns.
    pub fn by_site(&self) -> Vec<(FragmentId, Vec<usize>)> {
        let mut order: Vec<FragmentId> = Vec::new();
        let mut buckets: std::collections::HashMap<FragmentId, Vec<usize>> =
            std::collections::HashMap::new();
        for (j, &site) in self.sites.iter().enumerate() {
            if !buckets.contains_key(&site) {
                order.push(site);
            }
            buckets.entry(site).or_default().push(j);
        }
        order
            .into_iter()
            .map(|s| {
                let b = buckets.remove(&s).expect("collected above");
                (s, b)
            })
            .collect()
    }
}

/// The physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a named base relation (or a fixpoint binding), optionally
    /// projecting columns at the source so only needed attributes flow.
    SeqScan {
        /// Relation name.
        relation: String,
        /// Schema of the *stored* relation.
        schema: Schema,
        /// Columns to keep (None = all, in storage order).
        projection: Option<Vec<usize>>,
        /// Pushed-down copy of the predicate directly above this scan,
        /// used *only* for zone-map refutation of sealed chunks. The
        /// `Filter` node above is retained for exactness — pruning skips
        /// chunks whose zone maps prove no row can match; everything else
        /// still flows through the filter. Over the **stored** schema
        /// (column ordinals pre-projection).
        prune: Option<ScalarExpr>,
    },
    /// Literal rows.
    Values {
        /// Row schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// σ with a compiled predicate.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// π over expressions.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// One expression per output column.
        exprs: Vec<ScalarExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Equi-join: build a hash table on the right, probe with the left.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Join flavour.
        kind: JoinKind,
        /// Key pairs `(left ordinal, right ordinal)`; never empty.
        on: Vec<(usize, usize)>,
        /// Residual predicate over the concatenated schema.
        residual: Option<ScalarExpr>,
        /// Distribution strategy for the parallel executor.
        strategy: JoinStrategy,
        /// For `Partitioned` joins: the optimizer's bucket→site map
        /// driving the direct fragment→fragment shuffle (None = let the
        /// executor derive a default placement).
        placement: Option<ShufflePlacement>,
    },
    /// Theta join without equi-keys: materialize right, loop over left.
    NestedLoopJoin {
        /// Outer side.
        left: Box<PhysicalPlan>,
        /// Inner (materialized) side.
        right: Box<PhysicalPlan>,
        /// Join flavour.
        kind: JoinKind,
        /// Predicate over the concatenated schema (None = cross join).
        residual: Option<ScalarExpr>,
    },
    /// Bag/set union.
    Union {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Keep duplicates when true.
        all: bool,
    },
    /// Set difference (deduplicating, like the algebra).
    Difference {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input (builds the exclusion set).
        right: Box<PhysicalPlan>,
    },
    /// Streaming duplicate elimination.
    Distinct {
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// γ via a hash table keyed on the group columns.
    HashAggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-by ordinals (empty = one global group).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Materializing sort.
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// `(column, ascending)` keys.
        keys: Vec<(usize, bool)>,
    },
    /// Stop after `n` tuples.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Row budget.
        n: usize,
    },
    /// Semi-naive transitive closure (the OFM operator of §2.5).
    Closure {
        /// Binary input.
        input: Box<PhysicalPlan>,
    },
    /// Semi-naive linear fixpoint; `Scan(name)`/`Scan(Δname)` inside
    /// `step` read the accumulator/delta bindings.
    Fixpoint {
        /// Binding name.
        name: String,
        /// Base case.
        base: Box<PhysicalPlan>,
        /// Recursive step.
        step: Box<PhysicalPlan>,
    },
}

/// Chooses the distribution strategy for one lowered equi-join, given the
/// logical join node (so implementations can consult cardinalities).
pub type StrategyChooser<'a> = dyn FnMut(&LogicalPlan) -> JoinStrategy + 'a;

/// Lower a logical plan with the default (broadcast) join strategy.
pub fn lower(plan: &LogicalPlan) -> Result<PhysicalPlan> {
    lower_with(plan, &mut |_| JoinStrategy::Broadcast)
}

/// Lower a logical plan, asking `choose` for each equi-join's strategy.
pub fn lower_with(plan: &LogicalPlan, choose: &mut StrategyChooser<'_>) -> Result<PhysicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { relation, schema } => PhysicalPlan::SeqScan {
            relation: relation.clone(),
            schema: schema.clone(),
            projection: None,
            prune: None,
        },
        LogicalPlan::Values { schema, rows } => PhysicalPlan::Values {
            schema: schema.clone(),
            rows: rows.clone(),
        },
        LogicalPlan::Select { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(lower_with(input, choose)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(lower_with(input, choose)?),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            if on.is_empty() {
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(lower_with(left, choose)?),
                    right: Box::new(lower_with(right, choose)?),
                    kind: *kind,
                    residual: residual.clone(),
                }
            } else {
                let strategy = choose(plan);
                PhysicalPlan::HashJoin {
                    left: Box::new(lower_with(left, choose)?),
                    right: Box::new(lower_with(right, choose)?),
                    kind: *kind,
                    on: on.clone(),
                    residual: residual.clone(),
                    strategy,
                    placement: None,
                }
            }
        }
        LogicalPlan::Union { left, right, all } => PhysicalPlan::Union {
            left: Box::new(lower_with(left, choose)?),
            right: Box::new(lower_with(right, choose)?),
            all: *all,
        },
        LogicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(lower_with(left, choose)?),
            right: Box::new(lower_with(right, choose)?),
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(lower_with(input, choose)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(lower_with(input, choose)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(lower_with(input, choose)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(lower_with(input, choose)?),
            n: *n,
        },
        LogicalPlan::Closure { input } => PhysicalPlan::Closure {
            input: Box::new(lower_with(input, choose)?),
        },
        LogicalPlan::Fixpoint { name, base, step } => PhysicalPlan::Fixpoint {
            name: name.clone(),
            base: Box::new(lower_with(base, choose)?),
            step: Box::new(lower_with(step, choose)?),
        },
    })
}

impl PhysicalPlan {
    /// Output schema, derived structurally.
    pub fn output_schema(&self) -> Result<Schema> {
        Ok(match self {
            PhysicalPlan::SeqScan {
                schema, projection, ..
            } => match projection {
                None => schema.clone(),
                Some(cols) => schema.project(cols),
            },
            PhysicalPlan::Values { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Closure { input } => input.output_schema()?,
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::HashJoin {
                left, right, kind, ..
            }
            | PhysicalPlan::NestedLoopJoin {
                left, right, kind, ..
            } => match kind {
                JoinKind::Inner => left.output_schema()?.join(&right.output_schema()?),
                JoinKind::Semi | JoinKind::Anti => left.output_schema()?,
            },
            PhysicalPlan::Union { left, .. } | PhysicalPlan::Difference { left, .. } => {
                left.output_schema()?
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                // Delegate to the logical derivation to keep one source of
                // truth for aggregate typing.
                let logical = LogicalPlan::Aggregate {
                    input: Box::new(LogicalPlan::Values {
                        schema: input.output_schema()?,
                        rows: vec![],
                    }),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                };
                logical.output_schema()?
            }
            PhysicalPlan::Fixpoint { base, .. } => base.output_schema()?,
        })
    }

    /// Copy each `Filter` predicate onto the `SeqScan` directly beneath
    /// it as a zone-map **prune hint** (rewritten to stored-schema
    /// ordinals when the scan projects). The filter itself is left in
    /// place: pruning is refutation-only, so the plan's results are
    /// bit-identical with or without the hints — chunks the zone maps
    /// cannot refute still pass through the exact predicate.
    pub fn push_prune_hints(&mut self) {
        if let PhysicalPlan::Filter { input, predicate } = self {
            if let PhysicalPlan::SeqScan {
                projection, prune, ..
            } = input.as_mut()
            {
                let hint = match projection {
                    None => Some(predicate.clone()),
                    Some(cols) => {
                        // Filter ordinals are over the projected schema;
                        // zone maps are per stored column. Remap through
                        // the projection (validated plans never index
                        // past it, but stay conservative if one does).
                        if predicate.columns().iter().any(|&i| i >= cols.len()) {
                            None
                        } else {
                            let cols = cols.clone();
                            Some(predicate.remap_columns(&|i| cols[i]))
                        }
                    }
                };
                if hint.is_some() {
                    *prune = hint;
                }
            }
        }
        for c in self.children_mut() {
            c.push_prune_hints();
        }
    }

    /// Immediate children, mutably.
    pub fn children_mut(&mut self) -> Vec<&mut PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Closure { input } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::Union { left, right, .. }
            | PhysicalPlan::Difference { left, right } => vec![left, right],
            PhysicalPlan::Fixpoint { base, step, .. } => vec![base, step],
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Closure { input } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::Union { left, right, .. }
            | PhysicalPlan::Difference { left, right } => vec![left, right],
            PhysicalPlan::Fixpoint { base, step, .. } => vec![base, step],
        }
    }

    /// Validate ordinals and expression types against derived schemas.
    pub fn validate(&self) -> Result<Schema> {
        let schema = self.output_schema()?;
        match self {
            PhysicalPlan::SeqScan {
                schema: base,
                projection,
                ..
            } => {
                if let Some(cols) = projection {
                    for &c in cols {
                        if c >= base.arity() {
                            return Err(PrismaError::ExprType(format!(
                                "scan projection column {c} out of range"
                            )));
                        }
                    }
                }
            }
            PhysicalPlan::Filter { input, predicate } => {
                let in_schema = input.validate()?;
                predicate.check(&in_schema)?;
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let in_schema = input.validate()?;
                for e in exprs {
                    e.check(&in_schema)?;
                }
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                on,
                residual,
                ..
            } => {
                let ls = left.validate()?;
                let rs = right.validate()?;
                for &(l, r) in on {
                    if l >= ls.arity() || r >= rs.arity() {
                        return Err(PrismaError::ExprType(format!(
                            "join key ({l},{r}) out of range"
                        )));
                    }
                }
                if let Some(p) = residual {
                    p.check(&ls.join(&rs))?;
                }
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                residual,
                ..
            } => {
                let ls = left.validate()?;
                let rs = right.validate()?;
                if let Some(p) = residual {
                    p.check(&ls.join(&rs))?;
                }
            }
            _ => {
                for c in self.children() {
                    c.validate()?;
                }
            }
        }
        Ok(schema)
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PhysicalPlan::SeqScan {
                relation,
                projection,
                prune,
                ..
            } => {
                match projection {
                    None => write!(f, "{pad}SeqScan {relation}")?,
                    Some(cols) => write!(f, "{pad}SeqScan {relation} cols={cols:?}")?,
                }
                if let Some(p) = prune {
                    write!(f, " prune {p}")?;
                }
                writeln!(f)?;
            }
            PhysicalPlan::Values { rows, .. } => {
                writeln!(f, "{pad}Values [{} rows]", rows.len())?
            }
            PhysicalPlan::Filter { predicate, .. } => writeln!(f, "{pad}Filter {predicate}")?,
            PhysicalPlan::Project { exprs, schema, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .zip(schema.columns())
                    .map(|(e, c)| format!("{e} AS {}", c.name))
                    .collect();
                writeln!(f, "{pad}Project {}", cols.join(", "))?;
            }
            PhysicalPlan::HashJoin {
                kind,
                on,
                strategy,
                residual,
                placement,
                ..
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("l#{l}=r#{r}")).collect();
                write!(f, "{pad}Hash{kind} [{strategy}] on [{}]", keys.join(", "))?;
                if let Some(p) = placement {
                    let sites: std::collections::HashSet<_> = p.sites.iter().collect();
                    write!(f, " shuffle {}×buckets→{} site(s)", p.parts, sites.len())?;
                }
                if let Some(p) = residual {
                    write!(f, " filter {p}")?;
                }
                writeln!(f)?;
            }
            PhysicalPlan::NestedLoopJoin { kind, residual, .. } => {
                write!(f, "{pad}NestedLoop{kind}")?;
                if let Some(p) = residual {
                    write!(f, " filter {p}")?;
                }
                writeln!(f)?;
            }
            PhysicalPlan::Union { all, .. } => {
                writeln!(f, "{pad}Union{}", if *all { "All" } else { "" })?
            }
            PhysicalPlan::Difference { .. } => writeln!(f, "{pad}Difference")?,
            PhysicalPlan::Distinct { .. } => writeln!(f, "{pad}Distinct")?,
            PhysicalPlan::HashAggregate { group_by, aggs, .. } => {
                let names: Vec<String> = aggs.iter().map(|a| format!("{}", a.func)).collect();
                writeln!(
                    f,
                    "{pad}HashAggregate group={group_by:?} aggs=[{}]",
                    names.join(", ")
                )?;
            }
            PhysicalPlan::Sort { keys, .. } => writeln!(f, "{pad}Sort {keys:?}")?,
            PhysicalPlan::Limit { n, .. } => writeln!(f, "{pad}Limit {n}")?,
            PhysicalPlan::Closure { .. } => writeln!(f, "{pad}TransitiveClosure")?,
            PhysicalPlan::Fixpoint { name, .. } => writeln!(f, "{pad}Fixpoint {name}")?,
        }
        for c in self.children() {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_storage::expr::CmpOp;
    use prisma_types::{Column, DataType};

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("dept", DataType::Int),
        ])
    }

    #[test]
    fn lowering_picks_algorithms() {
        let plan = LogicalPlan::scan("emp", emp_schema())
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(0),
                ScalarExpr::lit(1),
            ))
            .join(LogicalPlan::scan("dept", emp_schema()), vec![(1, 0)]);
        let phys = lower(&plan).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Broadcast,
                ..
            }
        ));
        phys.validate().unwrap();
        let txt = phys.to_string();
        assert!(txt.contains("HashJoin [broadcast]"), "{txt}");
        assert!(txt.contains("SeqScan emp"), "{txt}");
    }

    #[test]
    fn theta_join_lowers_to_nested_loop() {
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("a", emp_schema())),
            right: Box::new(LogicalPlan::scan("b", emp_schema())),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(0),
                ScalarExpr::col(2),
            )),
        };
        let phys = lower(&plan).unwrap();
        assert!(matches!(phys, PhysicalPlan::NestedLoopJoin { .. }));
        assert_eq!(phys.output_schema().unwrap().arity(), 4);
    }

    #[test]
    fn chooser_controls_strategy() {
        let plan = LogicalPlan::scan("a", emp_schema())
            .join(LogicalPlan::scan("b", emp_schema()), vec![(0, 0)]);
        let phys = lower_with(&plan, &mut |_| JoinStrategy::Partitioned).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Partitioned,
                ..
            }
        ));
    }

    #[test]
    fn scan_projection_narrows_schema() {
        let scan = PhysicalPlan::SeqScan {
            relation: "emp".into(),
            schema: emp_schema(),
            projection: Some(vec![1]),
            prune: None,
        };
        let s = scan.output_schema().unwrap();
        assert_eq!(s.arity(), 1);
        assert_eq!(s.column(0).unwrap().name, "dept");
        // Out-of-range projection is rejected.
        let bad = PhysicalPlan::SeqScan {
            relation: "emp".into(),
            schema: emp_schema(),
            projection: Some(vec![9]),
            prune: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn prune_hints_copy_filters_onto_scans() {
        let pred = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5));
        let mut plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                relation: "emp".into(),
                schema: emp_schema(),
                projection: None,
                prune: None,
            }),
            predicate: pred.clone(),
        };
        plan.push_prune_hints();
        let PhysicalPlan::Filter { input, .. } = &plan else {
            panic!("filter survives the pass");
        };
        let PhysicalPlan::SeqScan { prune, .. } = input.as_ref() else {
            panic!("scan survives the pass");
        };
        assert_eq!(prune.as_ref(), Some(&pred));
        let txt = plan.to_string();
        assert!(txt.contains("prune "), "{txt}");
    }

    #[test]
    fn prune_hints_remap_through_scan_projection() {
        // Filter col#0 over a scan projecting stored column 1 → the hint
        // must name stored column 1.
        let mut plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::SeqScan {
                relation: "emp".into(),
                schema: emp_schema(),
                projection: Some(vec![1]),
                prune: None,
            }),
            predicate: ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(7)),
        };
        plan.push_prune_hints();
        let PhysicalPlan::Filter { input, .. } = &plan else {
            panic!("filter survives the pass");
        };
        let PhysicalPlan::SeqScan { prune, .. } = input.as_ref() else {
            panic!("scan survives the pass");
        };
        assert_eq!(
            prune.as_ref().map(|p| p.columns()),
            Some(vec![1]),
            "hint rewritten to stored ordinals"
        );
    }
}
