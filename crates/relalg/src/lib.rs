//! # prisma-relalg
//!
//! The **extended relational algebra** that is PRISMA's common query
//! currency (paper §2.3: "The semantics of PRISMAlog is defined in terms
//! of extensions of the relational algebra"; §2.5: OFMs "support a
//! transitive closure operator for dealing with recursive queries").
//!
//! * [`table::Relation`] — a materialized table (schema + tuples);
//! * [`plan::LogicalPlan`] — the algebra tree produced by the SQL and
//!   PRISMAlog front ends and rewritten by the optimizer, including the
//!   recursive extensions [`plan::LogicalPlan::Closure`] and
//!   [`plan::LogicalPlan::Fixpoint`];
//! * [`eval`] — a reference evaluator used by the OFM for local subplans
//!   and by tests as ground truth for the distributed executor;
//! * [`agg`] — aggregate functions.

pub mod agg;
pub mod eval;
pub mod plan;
pub mod table;

pub use agg::{AggExpr, AggFunc};
pub use eval::{eval, EvalContext, RelationProvider};
pub use plan::{JoinKind, LogicalPlan};
pub use table::Relation;
