//! # prisma-relalg
//!
//! The **extended relational algebra** that is PRISMA's common query
//! currency (paper §2.3: "The semantics of PRISMAlog is defined in terms
//! of extensions of the relational algebra"; §2.5: OFMs "support a
//! transitive closure operator for dealing with recursive queries").
//!
//! * [`table::Relation`] — a materialized table (schema + tuples);
//! * [`plan::LogicalPlan`] — the algebra tree produced by the SQL and
//!   PRISMAlog front ends and rewritten by the optimizer, including the
//!   recursive extensions [`plan::LogicalPlan::Closure`] and
//!   [`plan::LogicalPlan::Fixpoint`];
//! * [`physical::PhysicalPlan`] — the physical operator tree lowered from
//!   the logical plan: scans with fused projections, hash/nested-loop
//!   joins with a broadcast-vs-partitioned distribution strategy;
//! * [`exec`] — the pull-based batch executor that runs physical plans;
//!   OFMs execute their local subplans through it, with zero-copy
//!   [`exec::Batch`]es over `Arc`-shared relations, and expose the pull
//!   pipeline to the wire as a resumable [`exec::BatchStream`] (the seam
//!   streamed batch shipping pulls through);
//! * [`mod@eval`] — the reference evaluator, kept as the semantics oracle for
//!   tests (the executor must agree with it on every plan);
//! * [`agg`] — aggregate functions.

pub mod agg;
pub mod eval;
pub mod exec;
pub mod morsel;
pub mod physical;
pub mod plan;
pub mod table;

pub use agg::{AggExpr, AggFunc};
pub use eval::{eval, EvalContext, RelationProvider};
pub use exec::{
    chunk_scan_counters, execute_batches, execute_physical, open_batches, open_batches_pooled,
    Batch, BatchStream, Operator, BATCH_SIZE,
};
pub use physical::{lower, lower_with, JoinStrategy, PhysicalPlan, ShufflePlacement};
pub use plan::{JoinKind, LogicalPlan};
pub use table::{ChunkedRelation, Relation};
