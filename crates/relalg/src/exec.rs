//! Pull-based batch executor for physical plans.
//!
//! This is the hot execution path of the machine: the One-Fragment
//! Managers run lowered [`PhysicalPlan`]s against their fragment through
//! this executor, and the Global Data Handler uses it for coordinator-side
//! operators. Tuples flow in [`Batch`]es of up to [`BATCH_SIZE`] rows
//! pulled through an [`Operator`] tree:
//!
//! * scans over [`Arc<Relation>`]s emit **shared** batches — windows into
//!   the source relation, no tuple is copied;
//! * row-at-a-time `Tuple` clones inside operators are reference-count
//!   bumps ([`Tuple`] is `Arc`-backed), so filter/project/join pipelines
//!   never deep-copy payloads;
//! * blocking operators (hash build sides, aggregation, sort, closure,
//!   fixpoint) materialize only their own inputs; everything downstream
//!   keeps streaming.
//!
//! ## Row/column duality
//!
//! A [`Batch`] carries its rows in one of two physical forms:
//!
//! * **row-oriented** (`Shared` windows into an `Arc<Relation>`, or
//!   `Owned` tuple vectors) — what scans emit and what crosses the wire
//!   between PEs;
//! * **columnar** (`Columns`) — a set of `Arc`-shared [`ColumnVec`]s plus
//!   a [`SelVec`] selection vector, produced by Filter and Project so
//!   expressions evaluate column-at-a-time through the vectorized
//!   kernels in [`prisma_storage::expr`].
//!
//! Pivoting between the forms is **lazy in both directions and lazy per
//! column**:
//!
//! 1. *Rows → columns* happens per attribute, the first time a kernel
//!    references that attribute ([`prisma_types::LazyColumns::col`]).
//!    [`Batch::to_columns`] itself pivots nothing: it wraps the rows in
//!    a [`prisma_types::LazyColumns`], and a filter on `a < 5` over a
//!    batch with a fat `Str` column never deep-copies the strings —
//!    unreferenced columns are never built. The original tuple vector is
//!    kept alongside, so pivoting *back* to rows only bumps refcounts
//!    instead of re-assembling tuples.
//! 2. *Columns → rows* happens at materialization points — blocking
//!    operators, [`collect_batches`], join output, and the OFM wire
//!    boundary ([`Batch::into_rows`]) — and is cached per batch, so
//!    repeated [`Batch::tuples`] calls pivot at most once.
//!
//! A Filter over a columnar batch is pure selection refinement: the
//! output batch shares the input's column set untouched and only the
//! selection vector changes, so filtering allocates no per-tuple memory
//! at all.
//!
//! The reference evaluator in [`mod@crate::eval`] remains the semantics
//! oracle: `execute_physical(lower(p), db)` must agree with `eval(p, db)`
//! up to row order (property-tested in `tests/properties.rs`).

use std::sync::{Arc, OnceLock};

use prisma_poolx::WorkerPool;
use prisma_storage::expr::{CompiledPredicate, CompiledVecExpr, CompiledVecPredicate};
use prisma_storage::{FastMap, FastSet, FnvBuild};
use prisma_types::{ColumnVec, LazyColumns, PrismaError, Result, Schema, SelVec, Tuple, Value};

use crate::agg::{Accumulator, AggExpr};
use crate::eval::{transitive_closure, EvalContext, RelationProvider};
use crate::morsel::{self, JoinTable, ParPipelineOp, Stage};
use crate::physical::PhysicalPlan;
use crate::plan::JoinKind;
use crate::table::Relation;

/// Target tuples per batch.
pub const BATCH_SIZE: usize = 1024;

/// Process-wide chunk-scan telemetry: sealed chunks actually scanned vs
/// pruned whole by zone-map refutation, monotone counters sampled
/// before/after a query by the coordinator's metrics (the same pattern the
/// worker pool uses for morsel counts).
static CHUNKS_SCANNED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static CHUNKS_PRUNED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of the process-wide `(chunks scanned, chunks pruned)`
/// counters. Both are monotone; meter a query by differencing snapshots
/// taken around it.
pub fn chunk_scan_counters() -> (u64, u64) {
    (
        CHUNKS_SCANNED.load(std::sync::atomic::Ordering::Relaxed),
        CHUNKS_PRUNED.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// The shared column set of a columnar batch: a lazily-pivoting
/// [`LazyColumns`], `Arc`d so a filtered batch shares it (and every
/// column it ever materializes) with its input.
pub type SharedColumns = Arc<LazyColumns>;

/// A batch of tuples flowing between operators (and between machines).
///
/// `Shared` batches are zero-copy windows into an `Arc<Relation>`; `Owned`
/// batches hold operator output; `Columns` batches hold the columnar form
/// (see the module docs for the pivot rules). Cloning a batch or
/// extracting its tuples costs reference-count bumps, never payload
/// copies.
#[derive(Debug, Clone)]
pub struct Batch {
    inner: BatchInner,
    /// Wire size, computed at most once per batch (the ledger path asks
    /// on every ship).
    wire: OnceLock<u64>,
    /// When the batch *is* a whole sealed chunk — unprojected, every row
    /// selected — the chunk rides along so the wire boundary can reuse
    /// its cached [`prisma_types::wire::BlockChunk`] instead of
    /// re-encoding ([`Batch::encode_columnar_shared`]). Any operator that
    /// refines, projects, or rebuilds the batch drops the tag (all other
    /// constructors leave it `None`).
    chunk: Option<Arc<prisma_types::SealedChunk>>,
}

#[derive(Debug, Clone)]
enum BatchInner {
    Shared {
        rel: Arc<Relation>,
        start: usize,
        end: usize,
    },
    Owned(Vec<Tuple>),
    Columns {
        /// The per-attribute lazily-pivoting column set, each column of
        /// the batch's *full* (pre-selection) length; shared untouched
        /// through filters. When the set was built from rows, it retains
        /// them, so pivoting back gathers refcounted tuples instead of
        /// re-assembling them from column values.
        cols: SharedColumns,
        /// The live rows of `cols`.
        sel: SelVec,
        /// Lazily materialized selected rows (shared across clones).
        rows: Arc<OnceLock<Vec<Tuple>>>,
    },
}

impl Batch {
    fn from_inner(inner: BatchInner) -> Batch {
        Batch {
            inner,
            wire: OnceLock::new(),
            chunk: None,
        }
    }

    /// Serve a sealed column chunk as a batch with **zero row pivot**:
    /// the chunk's columns are `Arc`-shared into the batch (retaining the
    /// chunk's row vector, so a later pivot back to rows only bumps
    /// refcounts). Unprojected batches carry the chunk tag so the wire
    /// boundary reuses its cached encoding; a projection selects a subset
    /// of the chunk's columns — still no pivot — but drops the tag (the
    /// cached block covers every column).
    pub fn from_sealed_chunk(
        chunk: &Arc<prisma_types::SealedChunk>,
        projection: Option<&[usize]>,
    ) -> Batch {
        // An identity projection keeps the whole chunk, so it rides the
        // tagged path and keeps the cached wire block reachable.
        let identity = projection
            .is_some_and(|idx| idx.len() == chunk.arity() && idx.iter().enumerate().all(|(i, &c)| i == c));
        match projection.filter(|_| !identity) {
            None => {
                let cols = LazyColumns::from_rows_and_cols(
                    Arc::clone(chunk.rows()),
                    chunk.cols().to_vec(),
                );
                let mut b = Batch::from_inner(BatchInner::Columns {
                    cols: Arc::new(cols),
                    sel: SelVec::all(chunk.len()),
                    rows: Arc::new(OnceLock::new()),
                });
                b.chunk = Some(Arc::clone(chunk));
                b
            }
            Some(idx) => Batch::columns(
                idx.iter().map(|&c| Arc::clone(&chunk.cols()[c])).collect(),
                SelVec::all(chunk.len()),
            ),
        }
    }

    /// Batch owning its rows.
    pub fn owned(rows: Vec<Tuple>) -> Batch {
        Batch::from_inner(BatchInner::Owned(rows))
    }

    /// Zero-copy window `[start, end)` into a shared relation.
    pub fn shared(rel: Arc<Relation>, start: usize, end: usize) -> Batch {
        debug_assert!(start <= end && end <= rel.len());
        Batch::from_inner(BatchInner::Shared { rel, start, end })
    }

    /// Columnar batch over materialized columns: `sel` selects the live
    /// rows of `cols` (every column must have length `sel.len()`).
    pub fn columns(cols: Vec<Arc<ColumnVec>>, sel: SelVec) -> Batch {
        debug_assert!(cols.iter().all(|c| c.len() == sel.len()));
        Batch::from_inner(BatchInner::Columns {
            cols: Arc::new(LazyColumns::from_cols(cols)),
            sel,
            rows: Arc::new(OnceLock::new()),
        })
    }

    /// The rows, pivoting (and caching) for columnar batches.
    pub fn tuples(&self) -> &[Tuple] {
        match &self.inner {
            BatchInner::Shared { rel, start, end } => &rel.tuples()[*start..*end],
            BatchInner::Owned(rows) => rows,
            BatchInner::Columns { cols, sel, rows } => {
                rows.get_or_init(|| pivot_to_rows(cols, sel))
            }
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        match &self.inner {
            BatchInner::Shared { start, end, .. } => end - start,
            BatchInner::Owned(rows) => rows.len(),
            BatchInner::Columns { sel, .. } => sel.count(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wire size in bits when shipped between PEs; computed once and
    /// cached (callers meter every shipped batch against the ledger).
    pub fn wire_bits(&self) -> u64 {
        *self
            .wire
            .get_or_init(|| self.tuples().iter().map(Tuple::wire_bits).sum())
    }

    /// Extract the rows (refcount bumps for shared batches).
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self.inner {
            BatchInner::Shared { rel, start, end } => rel.tuples()[start..end].to_vec(),
            BatchInner::Owned(rows) => rows,
            BatchInner::Columns { cols, sel, rows } => match Arc::try_unwrap(rows) {
                Ok(cell) => cell
                    .into_inner()
                    .unwrap_or_else(|| pivot_to_rows(&cols, &sel)),
                Err(shared) => shared.get_or_init(|| pivot_to_rows(&cols, &sel)).clone(),
            },
        }
    }

    /// Pivot to the row-oriented form (the wire representation shipped
    /// between PEs). No-op for batches already holding rows.
    pub fn into_rows(self) -> Batch {
        match self.inner {
            BatchInner::Columns { .. } => {
                let wire = self.wire.clone();
                let mut out = Batch::owned(self.into_tuples());
                out.wire = wire;
                out
            }
            _ => self,
        }
    }

    /// The columnar form: the shared (lazily-pivoting) column set plus
    /// the live-row selection. Row-oriented batches wrap their rows here
    /// without pivoting anything — each attribute pivots on first kernel
    /// reference; columnar batches hand out their set for free.
    pub fn to_columns(&self) -> (SharedColumns, SelVec) {
        match &self.inner {
            BatchInner::Columns { cols, sel, .. } => (Arc::clone(cols), sel.clone()),
            _ => {
                let rows = self.tuples();
                let n = rows.len();
                (
                    Arc::new(LazyColumns::from_rows(Arc::new(rows.to_vec()))),
                    SelVec::all(n),
                )
            }
        }
    }

    /// Columnar batch over an already-shared column set (Filter's output:
    /// same columns, refined selection).
    pub(crate) fn columns_shared(cols: SharedColumns, sel: SelVec) -> Batch {
        Batch::from_inner(BatchInner::Columns {
            cols,
            sel,
            rows: Arc::new(OnceLock::new()),
        })
    }

    /// Value of attribute `col` in the `row`-th live row, served from the
    /// columnar form when present (no tuple is materialized, and a point
    /// read never forces a column pivot).
    #[inline]
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        match &self.inner {
            BatchInner::Columns { cols, sel, .. } => cols.value_at(sel.nth(row), col),
            _ => self.tuples()[row].get(col).clone(),
        }
    }

    /// Hash/group key of the `row`-th live row — the columnar analogue of
    /// [`Tuple::key`], used by hash-join and hash-aggregate so key
    /// extraction never forces a pivot back to rows.
    pub fn key_at(&self, row: usize, key_cols: &[usize]) -> Vec<Value> {
        key_cols.iter().map(|&c| self.value_at(row, c)).collect()
    }

    /// Encode the batch's live rows as one columnar wire frame
    /// ([`prisma_types::wire::BlockChunk`]). Columnar batches encode their
    /// column set directly (gathering through the selection when one is
    /// active); row batches pivot per column here — the *only* pivot the
    /// columnar wire pays, replacing the receive-side re-pivot of the row
    /// wire.
    pub fn encode_columnar(&self) -> prisma_types::wire::BlockChunk {
        use std::borrow::Cow;
        if let BatchInner::Columns { cols, sel, .. } = &self.inner {
            let rows = sel.count();
            return prisma_types::wire::BlockChunk::from_columns(
                rows,
                (0..cols.arity()).map(|c| {
                    let col = cols.col(c);
                    match sel.indices() {
                        None => Cow::Borrowed(&**col),
                        Some(idx) => Cow::Owned(col.gather(idx)),
                    }
                }),
            );
        }
        // Row-backed batches (scan windows, operator output) pivot each
        // attribute straight off the borrowed row slice — routing through
        // `to_columns` would first clone the whole tuple vector just to
        // own it inside a LazyColumns.
        let rows = self.tuples();
        let arity = rows.first().map_or(0, Tuple::arity);
        prisma_types::wire::BlockChunk::from_columns(
            rows.len(),
            (0..arity).map(|c| Cow::Owned(ColumnVec::pivot_one(rows, c))),
        )
    }

    /// [`Batch::encode_columnar`] behind an `Arc`, reusing the sealed
    /// chunk's **cached wire block** when the batch is a whole chunk
    /// (first ship builds it, every later ship of the unmutated chunk is
    /// an `Arc` clone — the encoder never runs again). Untagged batches
    /// pay the ordinary encode.
    pub fn encode_columnar_shared(&self) -> Arc<prisma_types::wire::BlockChunk> {
        match &self.chunk {
            Some(chunk) => chunk.wire_block(),
            None => Arc::new(self.encode_columnar()),
        }
    }

    /// The sealed chunk this batch is a whole, unfiltered view of, if
    /// any — the tag [`Batch::from_sealed_chunk`] sets on unprojected
    /// chunk scans. Receivers co-located in this process use it to serve
    /// the chunk's columns without re-decoding their own shared frame.
    pub fn sealed_chunk(&self) -> Option<&Arc<prisma_types::SealedChunk>> {
        self.chunk.as_ref()
    }

    /// Encode only the live rows at `positions` (indices into `0..len()`)
    /// as a columnar wire frame — the shuffle sender's per-bucket encode,
    /// which never materializes bucket tuples.
    pub fn encode_positions(&self, positions: &[u32]) -> prisma_types::wire::BlockChunk {
        use std::borrow::Cow;
        let (cols, sel) = self.to_columns();
        let idx: Vec<u32> = positions.iter().map(|&p| sel.nth(p as usize) as u32).collect();
        prisma_types::wire::BlockChunk::from_columns(
            positions.len(),
            (0..cols.arity()).map(|c| Cow::Owned(cols.col(c).gather(&idx))),
        )
    }

    /// Clone the live rows at `positions` — the row-wire counterpart of
    /// [`Batch::encode_positions`] (refcount bumps, no payload copies).
    pub fn gather_rows(&self, positions: &[u32]) -> Vec<Tuple> {
        let tuples = self.tuples();
        positions.iter().map(|&p| tuples[p as usize].clone()).collect()
    }

    /// Decode a received columnar wire frame into a columnar batch whose
    /// columns feed the coordinator's merge kernels directly — the
    /// receive side of the columnar wire never pivots to rows unless a
    /// downstream consumer materializes tuples itself.
    pub fn from_block(block: &prisma_types::wire::BlockChunk) -> Result<Batch> {
        let rows = block.rows();
        let cols = block.decode()?;
        if cols.is_empty() {
            // Zero-attribute batches (no such schema exists today, but the
            // frame can express one) fall back to empty tuples.
            return Ok(Batch::owned(vec![Tuple::new(Vec::new()); rows]));
        }
        Ok(Batch::columns(
            cols.into_iter().map(Arc::new).collect(),
            SelVec::all(rows),
        ))
    }
}

/// Materialize the selected rows of a columnar batch. When the column
/// set retains its source row form, gather refcounted tuples; otherwise
/// assemble tuples from column values (all columns are materialized in
/// that case — operator output never drops its columns).
fn pivot_to_rows(cols: &LazyColumns, sel: &SelVec) -> Vec<Tuple> {
    match cols.src_rows() {
        Some(rows) => sel.iter().map(|idx| rows[idx].clone()).collect(),
        None => sel
            .iter()
            .map(|idx| {
                Tuple::new((0..cols.arity()).map(|c| cols.col(c).value_at(idx)).collect())
            })
            .collect(),
    }
}

/// Collect batches into a relation with the given schema.
pub fn collect_batches(schema: Schema, batches: Vec<Batch>) -> Relation {
    let mut tuples = Vec::with_capacity(batches.iter().map(Batch::len).sum());
    for b in batches {
        tuples.extend(b.into_tuples());
    }
    Relation::new(schema, tuples)
}

/// A pull-based physical operator: yields batches until exhausted.
pub trait Operator {
    /// Produce the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

type BoxOp = Box<dyn Operator>;

/// Execute a physical plan to a materialized relation.
pub fn execute_physical(plan: &PhysicalPlan, provider: &dyn RelationProvider) -> Result<Relation> {
    let schema = plan.output_schema()?;
    let batches = execute_batches(plan, provider)?;
    Ok(collect_batches(schema, batches))
}

/// Execute a physical plan, returning the raw batch stream (what an OFM
/// ships back to the coordinator — all at once; the streaming wire path
/// pulls batches one at a time through [`open_batches`] instead).
pub fn execute_batches(plan: &PhysicalPlan, provider: &dyn RelationProvider) -> Result<Vec<Batch>> {
    open_batches(plan, provider)?.drain()
}

/// A resumable batch source: the pull pipeline of an opened physical plan
/// exposed as an iterator-style adapter.
///
/// This is the seam the streaming wire protocol hangs off: an OFM opens
/// its subplan once, then alternates [`BatchStream::next_batch`] with
/// shipping the produced batch, so the coordinator merges early batches
/// while the fragment is still scanning. Scans resolve their relations at
/// `open` time, so the stream owns its operator tree outright (no borrow
/// of the provider survives) and can be suspended between batches for as
/// long as the consumer likes.
pub struct BatchStream {
    op: BoxOp,
}

impl BatchStream {
    /// Pull the next non-empty batch, or `None` once exhausted (the
    /// [`Operator`] contract, without the trait object).
    pub fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.op.next_batch()
    }

    /// Run the stream to exhaustion (the one-shot materialized path).
    pub fn drain(mut self) -> Result<Vec<Batch>> {
        drain(self.op.as_mut())
    }
}

impl std::fmt::Debug for BatchStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStream").finish_non_exhaustive()
    }
}

/// Open a physical plan as a resumable [`BatchStream`]. The provider is
/// only consulted during opening (scan resolution); the returned stream
/// is self-contained.
pub fn open_batches(
    plan: &PhysicalPlan,
    provider: &dyn RelationProvider,
) -> Result<BatchStream> {
    open_batches_pooled(plan, provider, None)
}

/// [`open_batches`] with morsel-driven intra-fragment parallelism: when a
/// [`WorkerPool`] is supplied, compute-heavy spans of the operator tree
/// (scan→filter→project pipelines, hash-join builds and probes, hash
/// aggregation) dispatch [`BATCH_SIZE`]-row morsels to the pool's
/// work-stealing workers. Output batches are *identical* to the serial
/// path — same batches in the same order (see [`mod@crate::morsel`]) —
/// so the stream's consumers (including the wire protocol) cannot tell
/// the difference except by the clock.
pub fn open_batches_pooled(
    plan: &PhysicalPlan,
    provider: &dyn RelationProvider,
    pool: Option<Arc<WorkerPool>>,
) -> Result<BatchStream> {
    let mut ctx = EvalContext::new(provider);
    let op = open_with(plan, &mut ctx, pool.as_ref())?;
    Ok(BatchStream { op })
}

fn drain(op: &mut dyn Operator) -> Result<Vec<Batch>> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch()? {
        out.push(b);
    }
    Ok(out)
}

fn materialize(op: &mut dyn Operator, schema: Schema) -> Result<Relation> {
    Ok(collect_batches(schema, drain(op)?))
}

/// Build the operator tree for `plan`. Scans resolve their source
/// relation now (against the context's bindings and provider — the same
/// [`EvalContext`] the oracle uses, so name shadowing cannot diverge);
/// fixpoints evaluate eagerly because their bindings change per iteration.
pub fn open(plan: &PhysicalPlan, ctx: &mut EvalContext<'_>) -> Result<BoxOp> {
    open_with(plan, ctx, None)
}

/// [`open`] with an optional worker pool; the pool threads through every
/// recursive child so each parallelizable span of the tree can use it.
pub(crate) fn open_with(
    plan: &PhysicalPlan,
    ctx: &mut EvalContext<'_>,
    pool: Option<&Arc<WorkerPool>>,
) -> Result<BoxOp> {
    if let Some(pool) = pool {
        if let Some(op) = try_open_pipeline(plan, ctx, pool)? {
            return Ok(op);
        }
    }
    Ok(match plan {
        PhysicalPlan::SeqScan {
            relation,
            projection,
            prune,
            ..
        } => match ctx.lookup_chunked(relation) {
            Some(ch) => {
                let refuter = prune
                    .as_ref()
                    .map(prisma_storage::ZoneRefuter::compile)
                    .unwrap_or_default();
                Box::new(ChunkScanOp {
                    units: chunk_scan_units(&ch, &refuter),
                    projection: projection.clone(),
                    idx: 0,
                })
            }
            None => Box::new(ScanOp {
                rel: ctx.lookup(relation)?,
                projection: projection.clone(),
                pos: 0,
            }),
        },
        PhysicalPlan::Values { schema, rows } => Box::new(ScanOp {
            rel: Arc::new(Relation::new(schema.clone(), rows.clone())),
            projection: None,
            pos: 0,
        }),
        PhysicalPlan::Filter { input, predicate } => Box::new(FilterOp {
            child: open_with(input, ctx, pool)?,
            pred: predicate.compile_vec_predicate(),
            sel_buf: Vec::new(),
        }),
        PhysicalPlan::Project { input, exprs, .. } => Box::new(ProjectOp {
            child: open_with(input, ctx, pool)?,
            exprs: exprs.iter().map(|e| e.compile_vec()).collect(),
            identity: identity_width(exprs),
        }),
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            ..
        } => Box::new(HashJoinOp {
            probe: open_with(left, ctx, pool)?,
            build: Some(open_with(right, ctx, pool)?),
            table: JoinTable::default(),
            lkeys: on.iter().map(|&(l, _)| l).collect(),
            rkeys: on.iter().map(|&(_, r)| r).collect(),
            kind: *kind,
            residual: residual.as_ref().map(|p| p.compile_predicate()),
            pool: pool.map(Arc::clone),
        }),
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            residual,
        } => Box::new(NestedLoopOp {
            outer: open_with(left, ctx, pool)?,
            inner: Some(open_with(right, ctx, pool)?),
            inner_rows: Vec::new(),
            kind: *kind,
            residual: residual.as_ref().map(|p| p.compile_predicate()),
        }),
        PhysicalPlan::Union { left, right, all } => Box::new(UnionOp {
            left: Some(open_with(left, ctx, pool)?),
            right: Some(open_with(right, ctx, pool)?),
            seen: if *all { None } else { Some(FastSet::default()) },
        }),
        PhysicalPlan::Difference { left, right } => Box::new(DifferenceOp {
            left: open_with(left, ctx, pool)?,
            right: Some(open_with(right, ctx, pool)?),
            exclude: FastSet::default(),
            seen: FastSet::default(),
        }),
        PhysicalPlan::Distinct { input } => Box::new(DistinctOp {
            child: open_with(input, ctx, pool)?,
            seen: FastSet::default(),
        }),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => Box::new(HashAggOp {
            child: Some(open_with(input, ctx, pool)?),
            schema: plan.output_schema()?,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            output: None,
            pool: pool.map(Arc::clone),
        }),
        PhysicalPlan::Sort { input, keys } => Box::new(SortOp {
            child: Some(open_with(input, ctx, pool)?),
            schema: input.output_schema()?,
            keys: keys.clone(),
            output: None,
        }),
        PhysicalPlan::Limit { input, n } => Box::new(LimitOp {
            child: open_with(input, ctx, pool)?,
            remaining: *n,
        }),
        PhysicalPlan::Closure { input } => Box::new(ClosureOp {
            child: Some(open_with(input, ctx, pool)?),
            schema: input.output_schema()?,
            output: None,
        }),
        PhysicalPlan::Fixpoint { name, base, step } => {
            // Bindings change every iteration, so the fixpoint runs
            // eagerly here and streams its materialized result.
            let rel = run_fixpoint(name, base, step, ctx, pool)?;
            Box::new(ScanOp {
                rel: Arc::new(rel),
                projection: None,
                pos: 0,
            })
        }
    })
}

/// Recognize a scan-rooted pipeline fragment — `(Filter|Project)*` over
/// `SeqScan`/`Values` — and open it as a single morsel-parallel operator
/// when the source is big enough to be worth it. Returns `None` (caller
/// falls back to the serial operator chain) otherwise.
fn try_open_pipeline(
    plan: &PhysicalPlan,
    ctx: &mut EvalContext<'_>,
    pool: &Arc<WorkerPool>,
) -> Result<Option<BoxOp>> {
    let mut stages_rev: Vec<Stage> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            PhysicalPlan::Filter { input, predicate } => {
                stages_rev.push(Stage::Filter(predicate.compile_vec_predicate()));
                cur = input;
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                stages_rev.push(Stage::Project {
                    exprs: exprs.iter().map(|e| e.compile_vec()).collect(),
                    identity: identity_width(exprs),
                });
                cur = input;
            }
            PhysicalPlan::SeqScan {
                relation,
                projection,
                prune,
                ..
            } => {
                let stages: Vec<Stage> = stages_rev.into_iter().rev().collect();
                if let Some(ch) = ctx.lookup_chunked(relation) {
                    // Eligibility is decided *before* cutting scan units
                    // so an ineligible plan falls back to the serial
                    // chunk scan without double-counting prune telemetry.
                    if !ParPipelineOp::eligible(ch.len(), &stages, projection) {
                        return Ok(None);
                    }
                    let refuter = prune
                        .as_ref()
                        .map(prisma_storage::ZoneRefuter::compile)
                        .unwrap_or_default();
                    let units = chunk_scan_units(&ch, &refuter);
                    return Ok(Some(Box::new(morsel::ParChunkPipelineOp::new(
                        units,
                        projection.clone(),
                        stages,
                        Arc::clone(pool),
                    ))));
                }
                let rel = ctx.lookup(relation)?;
                if !ParPipelineOp::eligible(rel.len(), &stages, projection) {
                    return Ok(None);
                }
                return Ok(Some(Box::new(ParPipelineOp::new(
                    rel,
                    projection.clone(),
                    stages,
                    Arc::clone(pool),
                ))));
            }
            PhysicalPlan::Values { schema, rows } => {
                let stages: Vec<Stage> = stages_rev.into_iter().rev().collect();
                if !ParPipelineOp::eligible(rows.len(), &stages, &None) {
                    return Ok(None);
                }
                let rel = Arc::new(Relation::new(schema.clone(), rows.clone()));
                return Ok(Some(Box::new(ParPipelineOp::new(
                    rel,
                    None,
                    stages,
                    Arc::clone(pool),
                ))));
            }
            _ => return Ok(None),
        }
    }
}

fn run_fixpoint(
    name: &str,
    base: &PhysicalPlan,
    step: &PhysicalPlan,
    ctx: &mut EvalContext<'_>,
    pool: Option<&Arc<WorkerPool>>,
) -> Result<Relation> {
    let schema = base.output_schema()?;
    let delta_name = format!("Δ{name}");
    let mut base_op = open_with(base, ctx, pool)?;
    let base_rel = materialize(base_op.as_mut(), schema.clone())?.distinct();

    let mut all_set: FastSet<Tuple> = base_rel.tuples().iter().cloned().collect();
    let mut acc: Vec<Tuple> = base_rel.tuples().to_vec();
    let mut delta: Vec<Tuple> = base_rel.into_tuples();
    let mut iterations = 0;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > ctx.max_fixpoint_iterations() {
            return Err(PrismaError::Execution(format!(
                "fixpoint {name} exceeded iteration limit"
            )));
        }
        ctx.bind(
            name.to_owned(),
            Arc::new(Relation::new(schema.clone(), acc.clone())),
        );
        ctx.bind(
            delta_name.clone(),
            Arc::new(Relation::new(schema.clone(), delta)),
        );
        let mut step_op = open_with(step, ctx, pool)?;
        let produced = materialize(step_op.as_mut(), schema.clone())?;
        let mut fresh = Vec::new();
        for t in produced.into_tuples() {
            if all_set.insert(t.clone()) {
                fresh.push(t);
            }
        }
        acc.extend(fresh.iter().cloned());
        delta = fresh;
    }
    ctx.unbind(name);
    ctx.unbind(&delta_name);
    Ok(Relation::new(schema, acc))
}

// ---------------- partitioning (grace-join support) ----------------

/// Hash of a join key, shared by every site of a partitioned join so both
/// sides agree on bucket placement.
pub fn key_hash(key: &[Value]) -> u64 {
    use std::hash::{BuildHasher, Hash, Hasher};
    let mut h = FnvBuild.build_hasher();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// Split batches into `parts` buckets by join-key hash. Rows with a NULL
/// key component are dropped — SQL equi-joins never match NULL keys, so
/// they cannot contribute to any bucket's join result.
pub fn partition_batches(batches: Vec<Batch>, key_cols: &[usize], parts: usize) -> Vec<Vec<Tuple>> {
    let mut buckets: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
    for batch in batches {
        for t in batch.into_tuples() {
            let key = t.key(key_cols);
            if key.iter().any(Value::is_null) {
                continue;
            }
            let idx = (key_hash(&key) % parts as u64) as usize;
            buckets[idx].push(t);
        }
    }
    buckets
}

/// Split one batch's live rows into `parts` buckets of row *positions*
/// (indices into `0..batch.len()`) by join-key hash, reading keys straight
/// from the columnar form. Bucket placement is bit-identical to
/// [`partition_batches`] — same [`key_hash`], same NULL-key drop rule — so
/// the columnar and row shuffle wires route every row to the same site.
pub fn partition_positions(batch: &Batch, key_cols: &[usize], parts: usize) -> Vec<Vec<u32>> {
    let mut buckets: Vec<Vec<u32>> = (0..parts).map(|_| Vec::new()).collect();
    for row in 0..batch.len() {
        let key = batch.key_at(row, key_cols);
        if key.iter().any(Value::is_null) {
            continue;
        }
        let idx = (key_hash(&key) % parts as u64) as usize;
        buckets[idx].push(row as u32);
    }
    buckets
}

// ---------------- operators ----------------

/// One unit of a two-tier fragment scan: a whole sealed chunk (the
/// natural morsel — pre-pivoted, zone-mapped, wire-cached) or a
/// [`BATCH_SIZE`] window of the row delta.
#[derive(Debug, Clone)]
pub(crate) enum ScanUnit {
    /// A sealed column chunk, served with zero row pivot.
    Chunk(Arc<prisma_types::SealedChunk>),
    /// `[start, end)` window into the delta relation.
    Delta(Arc<Relation>, usize, usize),
}

impl ScanUnit {
    pub(crate) fn len(&self) -> usize {
        match self {
            ScanUnit::Chunk(c) => c.len(),
            ScanUnit::Delta(_, start, end) => end - start,
        }
    }

    /// The unit as a batch; delta windows mirror `ScanOp` exactly (shared
    /// window, or projected owned rows), so a chunked scan's delta tail is
    /// bit-identical to the row path.
    pub(crate) fn batch(&self, projection: Option<&[usize]>) -> Batch {
        match self {
            ScanUnit::Chunk(c) => Batch::from_sealed_chunk(c, projection),
            ScanUnit::Delta(rel, start, end) => match projection {
                None => Batch::shared(Arc::clone(rel), *start, *end),
                Some(cols) => Batch::owned(
                    rel.tuples()[*start..*end]
                        .iter()
                        .map(|t| t.project(cols))
                        .collect(),
                ),
            },
        }
    }
}

/// Cut a chunked relation into scan units, zone-pruning sealed chunks
/// **eagerly at open time**: a chunk whose zone maps refute the scan's
/// prune hint is dropped here, before any of its data is touched. Kept
/// chunks and prune victims bump the process-wide telemetry counters; the
/// delta is appended as ordinary row windows (units stay in
/// sealed-then-delta order so every execution mode scans identically).
pub(crate) fn chunk_scan_units(
    ch: &crate::table::ChunkedRelation,
    refuter: &prisma_storage::ZoneRefuter,
) -> Vec<ScanUnit> {
    let mut units = Vec::new();
    let mut scanned = 0u64;
    let mut pruned = 0u64;
    for chunk in ch.chunks() {
        if !refuter.is_trivial() && refuter.refutes(chunk.zones()) {
            pruned += 1;
        } else {
            scanned += 1;
            units.push(ScanUnit::Chunk(Arc::clone(chunk)));
        }
    }
    if scanned + pruned > 0 {
        CHUNKS_SCANNED.fetch_add(scanned, std::sync::atomic::Ordering::Relaxed);
        CHUNKS_PRUNED.fetch_add(pruned, std::sync::atomic::Ordering::Relaxed);
    }
    let delta = ch.delta();
    let mut start = 0;
    while start < delta.len() {
        let end = (start + BATCH_SIZE).min(delta.len());
        units.push(ScanUnit::Delta(Arc::clone(delta), start, end));
        start = end;
    }
    units
}

/// Scan over a two-tier chunked relation: one batch per surviving scan
/// unit (pruning already happened in [`chunk_scan_units`]).
struct ChunkScanOp {
    units: Vec<ScanUnit>,
    projection: Option<Vec<usize>>,
    idx: usize,
}

impl Operator for ChunkScanOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while self.idx < self.units.len() {
            let unit = &self.units[self.idx];
            self.idx += 1;
            if unit.len() == 0 {
                continue;
            }
            return Ok(Some(unit.batch(self.projection.as_deref())));
        }
        Ok(None)
    }
}

struct ScanOp {
    rel: Arc<Relation>,
    projection: Option<Vec<usize>>,
    pos: usize,
}

impl Operator for ScanOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.pos >= self.rel.len() {
            return Ok(None);
        }
        let start = self.pos;
        let end = (start + BATCH_SIZE).min(self.rel.len());
        self.pos = end;
        Ok(Some(match &self.projection {
            None => Batch::shared(Arc::clone(&self.rel), start, end),
            Some(cols) => Batch::owned(
                self.rel.tuples()[start..end]
                    .iter()
                    .map(|t| t.project(cols))
                    .collect(),
            ),
        }))
    }
}

/// Vectorized filter: predicate → refined selection vector. The output
/// batch shares the input's columns; no per-tuple output buffer is
/// allocated. `sel_buf` (and the predicate's internal conjunction
/// scratch) persist across `next_batch` calls, so steady state allocates
/// only the compact index vector that escapes inside the output batch —
/// and nothing at all when every row survives.
struct FilterOp {
    child: BoxOp,
    pred: CompiledVecPredicate,
    sel_buf: Vec<u32>,
}

impl Operator for FilterOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.child.next_batch()? {
            if batch.is_empty() {
                continue;
            }
            let (cols, sel) = batch.to_columns();
            self.pred.select(&cols, &sel, &mut self.sel_buf);
            if self.sel_buf.is_empty() {
                continue;
            }
            let kept = if self.sel_buf.len() == sel.count() && sel.is_all() {
                SelVec::all(sel.len())
            } else {
                SelVec::from_indices(sel.len(), self.sel_buf.clone())
            };
            return Ok(Some(Batch::columns_shared(cols, kept)));
        }
        Ok(None)
    }
}

/// Vectorized projection: each output attribute is one kernel evaluation
/// over the input columns. Plain column references under a full selection
/// are refcount bumps (and pure column projections are usually already
/// fused into the scan by the optimizer).
struct ProjectOp {
    child: BoxOp,
    exprs: Vec<CompiledVecExpr>,
    /// `Some(n)` when the projection is `Col(0)..Col(n-1)` — a pure
    /// rename at plan level. Whole-chunk batches of arity `n` then pass
    /// through untouched, keeping their sealed-chunk tag (and with it
    /// the cached wire block) alive across the projection.
    identity: Option<usize>,
}

/// `Some(n)` iff `exprs` is exactly `[Col(0), .., Col(n-1)]`.
pub(crate) fn identity_width(exprs: &[prisma_storage::expr::ScalarExpr]) -> Option<usize> {
    use prisma_storage::expr::ScalarExpr;
    exprs
        .iter()
        .enumerate()
        .all(|(i, e)| matches!(e, ScalarExpr::Col(c) if *c == i))
        .then_some(exprs.len())
}

impl Operator for ProjectOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.child.next_batch()? {
            // An empty batch pivots to zero columns (arity unknowable),
            // which the kernels' column references cannot index — and it
            // carries no rows to project anyway.
            if batch.is_empty() {
                continue;
            }
            if let (Some(n), Some(chunk)) = (self.identity, batch.sealed_chunk()) {
                if chunk.arity() == n {
                    return Ok(Some(batch));
                }
            }
            let (cols, sel) = batch.to_columns();
            let out: Vec<Arc<ColumnVec>> =
                self.exprs.iter().map(|e| e.eval(&cols, &sel)).collect();
            return Ok(Some(Batch::columns(out, SelVec::all(sel.count()))));
        }
        Ok(None)
    }
}

struct HashJoinOp {
    probe: BoxOp,
    build: Option<BoxOp>,
    table: JoinTable,
    lkeys: Vec<usize>,
    rkeys: Vec<usize>,
    kind: JoinKind,
    residual: Option<CompiledPredicate>,
    /// Morsel-parallel build and probe when attached; candidate and
    /// output orders match the serial path exactly (contiguous-chunk
    /// partial builds merged in chunk order, probe morsels concatenated
    /// in row order).
    pool: Option<Arc<WorkerPool>>,
}

impl HashJoinOp {
    fn build_table(&mut self) -> Result<()> {
        let Some(mut build) = self.build.take() else {
            return Ok(());
        };
        match &self.pool {
            Some(pool) => {
                let batches = drain(build.as_mut())?;
                self.table = morsel::parallel_build(pool, &batches, &self.rkeys);
            }
            None => {
                while let Some(batch) = build.next_batch()? {
                    // Key extraction reads the columnar form when the
                    // child produced one; the stored row still comes
                    // from the (cached) row pivot, since probe output
                    // concatenates whole tuples.
                    morsel::insert_build_batch(&mut self.table, &batch, &self.rkeys);
                }
            }
        }
        Ok(())
    }
}

/// Probe rows `[start, end)` of one batch against the build table — the
/// row-at-a-time kernel shared by the serial probe loop and the morsel
/// splits of the parallel one.
pub(crate) fn probe_range(
    table: &JoinTable,
    lkeys: &[usize],
    kind: JoinKind,
    residual: Option<&CompiledPredicate>,
    batch: &Batch,
    start: usize,
    end: usize,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for row in start..end {
        // Columnar key extraction: a probe batch whose keys all miss
        // never pivots back to rows at all.
        let key = batch.key_at(row, lkeys);
        let candidates = if key.iter().any(Value::is_null) {
            &[][..]
        } else {
            table.get(&key).map(Vec::as_slice).unwrap_or(&[])
        };
        let mut matched = false;
        if !candidates.is_empty() {
            // Materialized lazily so an all-miss probe batch never
            // pivots back to rows.
            let lt = &batch.tuples()[row];
            for rt in candidates {
                let joined = lt.concat(rt);
                let ok = residual.is_none_or(|p| p(&joined));
                if ok {
                    matched = true;
                    if kind == JoinKind::Inner {
                        out.push(joined);
                    } else {
                        break;
                    }
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(batch.tuples()[row].clone()),
            JoinKind::Anti if !matched => out.push(batch.tuples()[row].clone()),
            _ => {}
        }
    }
    out
}

impl Operator for HashJoinOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.build_table()?;
        while let Some(batch) = self.probe.next_batch()? {
            let out = match &self.pool {
                Some(pool) => {
                    let (table, lkeys, kind) = (&self.table, &self.lkeys[..], self.kind);
                    let residual = self.residual.as_ref();
                    morsel::parallel_probe(pool, &batch, |b, s, e| {
                        probe_range(table, lkeys, kind, residual, b, s, e)
                    })
                }
                None => probe_range(
                    &self.table,
                    &self.lkeys,
                    self.kind,
                    self.residual.as_ref(),
                    &batch,
                    0,
                    batch.len(),
                ),
            };
            if !out.is_empty() {
                return Ok(Some(Batch::owned(out)));
            }
        }
        Ok(None)
    }
}

struct NestedLoopOp {
    outer: BoxOp,
    inner: Option<BoxOp>,
    inner_rows: Vec<Tuple>,
    kind: JoinKind,
    residual: Option<CompiledPredicate>,
}

impl Operator for NestedLoopOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if let Some(mut inner) = self.inner.take() {
            while let Some(batch) = inner.next_batch()? {
                self.inner_rows.extend(batch.into_tuples());
            }
        }
        while let Some(batch) = self.outer.next_batch()? {
            let mut out = Vec::new();
            for lt in batch.tuples() {
                let mut matched = false;
                for rt in &self.inner_rows {
                    let joined = lt.concat(rt);
                    let ok = self.residual.as_ref().is_none_or(|p| p(&joined));
                    if ok {
                        matched = true;
                        if self.kind == JoinKind::Inner {
                            out.push(joined);
                        } else {
                            break;
                        }
                    }
                }
                match self.kind {
                    JoinKind::Semi if matched => out.push(lt.clone()),
                    JoinKind::Anti if !matched => out.push(lt.clone()),
                    _ => {}
                }
            }
            if !out.is_empty() {
                return Ok(Some(Batch::owned(out)));
            }
        }
        Ok(None)
    }
}

struct UnionOp {
    left: Option<BoxOp>,
    right: Option<BoxOp>,
    /// Some = set semantics (dedup across both inputs).
    seen: Option<FastSet<Tuple>>,
}

impl UnionOp {
    fn filtered(&mut self, batch: Batch) -> Option<Batch> {
        match &mut self.seen {
            None => Some(batch),
            Some(seen) => {
                let kept: Vec<Tuple> = batch
                    .tuples()
                    .iter()
                    .filter(|t| seen.insert((*t).clone()))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Batch::owned(kept))
                }
            }
        }
    }
}

impl Operator for UnionOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while let Some(side) = self.left.as_mut().or(self.right.as_mut()) {
            match side.next_batch()? {
                Some(batch) => {
                    if let Some(out) = self.filtered(batch) {
                        return Ok(Some(out));
                    }
                }
                None => {
                    if self.left.is_some() {
                        self.left = None;
                    } else {
                        self.right = None;
                    }
                }
            }
        }
        Ok(None)
    }
}

struct DifferenceOp {
    left: BoxOp,
    right: Option<BoxOp>,
    exclude: FastSet<Tuple>,
    seen: FastSet<Tuple>,
}

impl Operator for DifferenceOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                self.exclude.extend(batch.into_tuples());
            }
        }
        while let Some(batch) = self.left.next_batch()? {
            let kept: Vec<Tuple> = batch
                .tuples()
                .iter()
                .filter(|t| !self.exclude.contains(*t) && self.seen.insert((*t).clone()))
                .cloned()
                .collect();
            if !kept.is_empty() {
                return Ok(Some(Batch::owned(kept)));
            }
        }
        Ok(None)
    }
}

struct DistinctOp {
    child: BoxOp,
    seen: FastSet<Tuple>,
}

impl Operator for DistinctOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.child.next_batch()? {
            let kept: Vec<Tuple> = batch
                .tuples()
                .iter()
                .filter(|t| self.seen.insert((*t).clone()))
                .cloned()
                .collect();
            if !kept.is_empty() {
                return Ok(Some(Batch::owned(kept)));
            }
        }
        Ok(None)
    }
}

struct HashAggOp {
    child: Option<BoxOp>,
    schema: Schema,
    group_by: Vec<usize>,
    aggs: Vec<AggExpr>,
    output: Option<ScanOp>,
    /// Morsel-parallel partial aggregation when attached; partials merge
    /// in chunk order, so group order and float rounding match serial.
    pool: Option<Arc<WorkerPool>>,
}

impl HashAggOp {
    fn run(&mut self) -> Result<Vec<Tuple>> {
        let mut child = self.child.take().expect("aggregate runs once");
        // Grouping consumes the columnar form directly: group keys and
        // aggregate inputs are read from the column vectors, so a
        // filtered/projected input never pivots back to tuples.
        let (groups, order) = match &self.pool {
            Some(pool) => {
                let batches = drain(child.as_mut())?;
                morsel::parallel_aggregate(pool, &batches, &self.group_by, &self.aggs)?
            }
            None => {
                let mut groups: FastMap<Vec<Value>, Vec<Accumulator>> = FastMap::default();
                let mut order: Vec<Vec<Value>> = Vec::new();
                while let Some(batch) = child.next_batch()? {
                    morsel::update_agg_batch(
                        &mut groups,
                        &mut order,
                        &batch,
                        &self.group_by,
                        &self.aggs,
                    )?;
                }
                (groups, order)
            }
        };
        // Global aggregate over empty input still yields one row.
        if self.group_by.is_empty() && groups.is_empty() {
            let row: Vec<Value> = self
                .aggs
                .iter()
                .map(|a| Accumulator::new(a.func).finish())
                .collect();
            return Ok(vec![Tuple::new(row)]);
        }
        let mut tuples = Vec::with_capacity(order.len());
        for key in order {
            let accs = &groups[&key];
            let mut row = key;
            row.extend(accs.iter().map(Accumulator::finish));
            tuples.push(Tuple::new(row));
        }
        Ok(tuples)
    }
}

impl Operator for HashAggOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let rows = self.run()?;
            self.output = Some(ScanOp {
                rel: Arc::new(Relation::new(self.schema.clone(), rows)),
                projection: None,
                pos: 0,
            });
        }
        self.output.as_mut().expect("set above").next_batch()
    }
}

struct SortOp {
    child: Option<BoxOp>,
    schema: Schema,
    keys: Vec<(usize, bool)>,
    output: Option<ScanOp>,
}

impl Operator for SortOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let mut child = self.child.take().expect("sort runs once");
            let rel = materialize(child.as_mut(), self.schema.clone())?;
            self.output = Some(ScanOp {
                rel: Arc::new(rel.sorted_by(&self.keys)),
                projection: None,
                pos: 0,
            });
        }
        self.output.as_mut().expect("set above").next_batch()
    }
}

struct LimitOp {
    child: BoxOp,
    remaining: usize,
}

impl Operator for LimitOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                if batch.len() <= self.remaining {
                    self.remaining -= batch.len();
                    Ok(Some(batch))
                } else {
                    let head: Vec<Tuple> = batch.tuples()[..self.remaining].to_vec();
                    self.remaining = 0;
                    Ok(Some(Batch::owned(head)))
                }
            }
        }
    }
}

struct ClosureOp {
    child: Option<BoxOp>,
    schema: Schema,
    output: Option<ScanOp>,
}

impl Operator for ClosureOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let mut child = self.child.take().expect("closure runs once");
            let rel = materialize(child.as_mut(), self.schema.clone())?;
            self.output = Some(ScanOp {
                rel: Arc::new(transitive_closure(&rel)?),
                projection: None,
                pos: 0,
            });
        }
        self.output.as_mut().expect("set above").next_batch()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::agg::AggFunc;
    use crate::eval::eval;
    use crate::physical::lower;
    use crate::plan::LogicalPlan;
    use prisma_storage::expr::{ArithOp, CmpOp, ScalarExpr};
    use prisma_types::{tuple, Column, DataType};

    fn db() -> HashMap<String, Relation> {
        let emp = Relation::new(
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("dept", DataType::Int),
                Column::new("salary", DataType::Double),
            ]),
            (0..3000_i64)
                .map(|i| tuple![i, i % 7, (i % 100) as f64])
                .collect(),
        );
        let dept = Relation::new(
            Schema::new(vec![
                Column::new("dept_id", DataType::Int),
                Column::new("name", DataType::Str),
            ]),
            (0..5_i64).map(|i| tuple![i, format!("d{i}")]).collect(),
        );
        let edge = Relation::new(
            Schema::new(vec![
                Column::new("src", DataType::Int),
                Column::new("dst", DataType::Int),
            ]),
            vec![tuple![1, 2], tuple![2, 3], tuple![3, 4], tuple![4, 2]],
        );
        let mut m = HashMap::new();
        m.insert("emp".to_owned(), emp);
        m.insert("dept".to_owned(), dept);
        m.insert("edge".to_owned(), edge);
        m
    }

    fn assert_agrees(plan: &LogicalPlan, db: &HashMap<String, Relation>) {
        let phys = lower(plan).unwrap();
        let via_exec = execute_physical(&phys, db).unwrap().canonicalized();
        let via_eval = eval(plan, db).unwrap().canonicalized();
        assert_eq!(via_exec.tuples(), via_eval.tuples(), "plan:\n{plan}");
        assert_eq!(via_exec.schema().arity(), via_eval.schema().arity());
    }

    #[test]
    fn scan_emits_shared_batches_of_bounded_size() {
        let db = db();
        let phys = lower(&LogicalPlan::scan("emp", db["emp"].schema().clone())).unwrap();
        let batches = execute_batches(&phys, &db).unwrap();
        assert_eq!(batches.len(), 3); // 3000 rows / 1024
        assert!(batches.iter().all(|b| b.len() <= BATCH_SIZE));
        assert!(matches!(batches[0].inner, BatchInner::Shared { .. }));
        assert_eq!(batches.iter().map(Batch::len).sum::<usize>(), 3000);
    }

    #[test]
    fn pipeline_matches_eval() {
        let db = db();
        let plan = LogicalPlan::scan("emp", db["emp"].schema().clone())
            .select(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(2),
                ScalarExpr::lit(50.0),
            ))
            .project_cols(&[0, 1])
            .unwrap();
        assert_agrees(&plan, &db);
    }

    #[test]
    fn joins_match_eval() {
        let db = db();
        let inner = LogicalPlan::scan("emp", db["emp"].schema().clone())
            .join(LogicalPlan::scan("dept", db["dept"].schema().clone()), vec![(1, 0)]);
        assert_agrees(&inner, &db);
        for kind in [JoinKind::Semi, JoinKind::Anti] {
            let plan = LogicalPlan::Join {
                left: Box::new(LogicalPlan::scan("emp", db["emp"].schema().clone())),
                right: Box::new(LogicalPlan::scan("dept", db["dept"].schema().clone())),
                kind,
                on: vec![(1, 0)],
                residual: None,
            };
            assert_agrees(&plan, &db);
        }
        // Theta join through the nested-loop operator.
        let theta = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("dept", db["dept"].schema().clone())),
            right: Box::new(LogicalPlan::scan("dept", db["dept"].schema().clone())),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(0),
                ScalarExpr::col(2),
            )),
        };
        assert_agrees(&theta, &db);
    }

    #[test]
    fn blocking_operators_match_eval() {
        let db = db();
        let agg = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("emp", db["emp"].schema().clone())),
            group_by: vec![1],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Sum, 2, "s"),
                AggExpr::new(AggFunc::Avg, 2, "a"),
            ],
        };
        assert_agrees(&agg, &db);
        let sorted = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::scan("emp", db["emp"].schema().clone())),
                keys: vec![(1, true), (0, false)],
            }),
            n: 10,
        };
        assert_agrees(&sorted, &db);
    }

    #[test]
    fn set_operators_match_eval() {
        let db = db();
        let a = LogicalPlan::scan("emp", db["emp"].schema().clone())
            .project_cols(&[1])
            .unwrap();
        for all in [true, false] {
            let u = LogicalPlan::Union {
                left: Box::new(a.clone()),
                right: Box::new(a.clone()),
                all,
            };
            assert_agrees(&u, &db);
        }
        let diff = LogicalPlan::Difference {
            left: Box::new(a.clone()),
            right: Box::new(LogicalPlan::Values {
                schema: a.output_schema().unwrap(),
                rows: vec![tuple![0], tuple![3]],
            }),
        };
        assert_agrees(&diff, &db);
        let distinct = LogicalPlan::Distinct {
            input: Box::new(a),
        };
        assert_agrees(&distinct, &db);
    }

    #[test]
    fn recursion_matches_eval() {
        let db = db();
        let closure = LogicalPlan::Closure {
            input: Box::new(LogicalPlan::scan("edge", db["edge"].schema().clone())),
        };
        assert_agrees(&closure, &db);
        let edge_schema = db["edge"].schema().clone();
        let fixpoint = LogicalPlan::Fixpoint {
            name: "path".into(),
            base: Box::new(LogicalPlan::scan("edge", edge_schema.clone())),
            step: Box::new(
                LogicalPlan::scan("Δpath", edge_schema.clone())
                    .join(LogicalPlan::scan("edge", edge_schema), vec![(1, 0)])
                    .project_cols(&[0, 3])
                    .unwrap(),
            ),
        };
        assert_agrees(&fixpoint, &db);
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(
                LogicalPlan::scan("emp", db["emp"].schema().clone())
                    .select(ScalarExpr::lit(false)),
            ),
            group_by: vec![],
            aggs: vec![AggExpr::new(AggFunc::CountStar, 0, "n")],
        };
        assert_agrees(&plan, &db);
    }

    #[test]
    fn partitioning_is_consistent_and_drops_nulls() {
        let rel = Arc::new(Relation::new(
            Schema::new(vec![Column::nullable("k", DataType::Int)]),
            vec![tuple![1], tuple![2], Tuple::new(vec![Value::Null]), tuple![1]],
        ));
        let batches = vec![Batch::shared(rel, 0, 4)];
        let parts = partition_batches(batches, &[0], 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 3, "NULL key dropped");
        // Equal keys land in the same bucket.
        let with_one: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, b)| b.iter().any(|t| t.get(0) == &Value::Int(1)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_one.len(), 1);
        assert_eq!(parts[with_one[0]].iter().filter(|t| t.get(0) == &Value::Int(1)).count(), 2);
    }

    #[test]
    fn filter_emits_columnar_batches_sharing_input_columns() {
        let db = db();
        let plan = LogicalPlan::scan("emp", db["emp"].schema().clone()).select(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(100)),
        );
        let phys = lower(&plan).unwrap();
        let batches = execute_batches(&phys, &db).unwrap();
        assert_eq!(batches.iter().map(Batch::len).sum::<usize>(), 100);
        for b in &batches {
            let BatchInner::Columns { cols, sel, .. } = &b.inner else {
                panic!("filter output should be columnar");
            };
            // Selection refines; materialized columns keep the full
            // pre-filter length, and only the predicate's column (0) was
            // ever pivoted.
            assert!(sel.count() <= sel.len());
            assert!(cols.is_materialized(0), "predicate column not pivoted");
            assert_eq!(
                cols.materialized_count(),
                1,
                "filter pivoted columns its predicate never references"
            );
            assert_eq!(cols.col(0).len(), sel.len());
        }
        // Pivot back to rows agrees with the oracle.
        let rel = collect_batches(phys.output_schema().unwrap(), batches);
        let oracle = eval(&plan, &db).unwrap();
        assert_eq!(
            rel.canonicalized().tuples(),
            oracle.canonicalized().tuples()
        );
    }

    #[test]
    fn batch_pivot_roundtrip_and_wire_bits_cache() {
        let rows = vec![tuple![1, 2.5, "a"], tuple![2, -0.5, "bb"]];
        let b = Batch::owned(rows.clone());
        let (cols, sel) = b.to_columns();
        assert_eq!(cols.arity(), 3);
        assert!(sel.is_all());
        assert!(cols.src_rows().is_some());
        assert_eq!(cols.materialized_count(), 0, "to_columns pivots nothing");
        let col_batch = Batch::columns_shared(cols, SelVec::from_indices(2, vec![1]));
        assert_eq!(col_batch.len(), 1);
        assert_eq!(col_batch.tuples(), &rows[1..]);
        // wire_bits of the pivoted batch equals the row computation, and
        // the cached value is stable across calls.
        let expected: u64 = rows[1].wire_bits();
        assert_eq!(col_batch.wire_bits(), expected);
        assert_eq!(col_batch.wire_bits(), expected);
        // Gathered rows are refcount bumps of the source tuples.
        assert_eq!(col_batch.value_at(0, 2), Value::from("bb"));
        assert_eq!(col_batch.key_at(0, &[1, 0]), vec![Value::from(-0.5), Value::from(2)]);
    }

    #[test]
    fn project_evaluates_vectorized_over_filtered_selection() {
        let db = db();
        // salary < 50 then compute id * 2 + dept: exercises kernels over
        // a partial selection (gather paths).
        let filtered = LogicalPlan::scan("emp", db["emp"].schema().clone()).select(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::lit(50.0)),
        );
        let plan = LogicalPlan::Project {
            input: Box::new(filtered),
            exprs: vec![
                ScalarExpr::arith(
                    ArithOp::Add,
                    ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(2)),
                    ScalarExpr::col(1),
                ),
                ScalarExpr::col(2),
            ],
            schema: Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("salary", DataType::Double),
            ]),
        };
        assert_agrees(&plan, &db);
    }

    #[test]
    fn pooled_execution_is_bit_identical_to_serial() {
        let db = db();
        let emp = || LogicalPlan::scan("emp", db["emp"].schema().clone());
        let dept = || LogicalPlan::scan("dept", db["dept"].schema().clone());
        let plans = vec![
            // Scan→filter→project pipeline (ParPipelineOp).
            emp()
                .select(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(2),
                    ScalarExpr::lit(50.0),
                ))
                .project_cols(&[0, 1])
                .unwrap(),
            // Hash join: parallel build + probe.
            emp().join(dept(), vec![(1, 0)]),
            // Aggregate: parallel partials folded at the breaker.
            LogicalPlan::Aggregate {
                input: Box::new(emp()),
                group_by: vec![1],
                aggs: vec![
                    AggExpr::new(AggFunc::CountStar, 0, "n"),
                    AggExpr::new(AggFunc::Sum, 2, "s"),
                    AggExpr::new(AggFunc::Avg, 2, "a"),
                ],
            },
        ];
        for plan in &plans {
            let phys = lower(plan).unwrap();
            let serial: Vec<Tuple> = open_batches(&phys, &db)
                .unwrap()
                .drain()
                .unwrap()
                .into_iter()
                .flat_map(Batch::into_tuples)
                .collect();
            for workers in [2usize, 4] {
                let pool = prisma_poolx::WorkerPool::new(workers);
                let pooled: Vec<Tuple> =
                    open_batches_pooled(&phys, &db, Some(Arc::clone(&pool)))
                        .unwrap()
                        .drain()
                        .unwrap()
                        .into_iter()
                        .flat_map(Batch::into_tuples)
                        .collect();
                // Not just set-equal: same rows in the same order.
                assert_eq!(pooled, serial, "workers={workers} plan:\n{plan}");
                assert!(pool.stats().morsels > 0, "pool unused at {workers} workers");
            }
        }
    }

    #[test]
    fn projection_fused_into_scan() {
        let db = db();
        let phys = PhysicalPlan::SeqScan {
            relation: "emp".into(),
            schema: db["emp"].schema().clone(),
            projection: Some(vec![1, 0]),
            prune: None,
        };
        let out = execute_physical(&phys, &db).unwrap();
        assert_eq!(out.schema().arity(), 2);
        assert_eq!(out.schema().column(0).unwrap().name, "dept");
        assert_eq!(out.len(), 3000);
    }

    // ---------------- two-tier chunked scans ----------------

    /// A provider serving `emp` two-tier: the first `sealed_rows` rows as
    /// sealed column chunks of `chunk_rows` each, the rest as a row delta.
    struct ChunkedDb {
        rows: HashMap<String, Relation>,
        chunked: HashMap<String, Arc<crate::table::ChunkedRelation>>,
    }

    impl RelationProvider for ChunkedDb {
        fn relation(&self, name: &str) -> Result<Arc<Relation>> {
            self.rows.relation(name)
        }

        fn chunked(&self, name: &str) -> Option<Arc<crate::table::ChunkedRelation>> {
            self.chunked.get(name).map(Arc::clone)
        }
    }

    fn chunked_db(chunk_rows: usize, sealed_rows: usize) -> ChunkedDb {
        let rows = db();
        let emp = &rows["emp"];
        let chunks: Vec<Arc<prisma_types::SealedChunk>> = emp.tuples()[..sealed_rows]
            .chunks(chunk_rows)
            .map(|run| Arc::new(prisma_types::SealedChunk::seal(run.to_vec())))
            .collect();
        let delta = Relation::new(emp.schema().clone(), emp.tuples()[sealed_rows..].to_vec());
        let mut chunked = HashMap::new();
        chunked.insert(
            "emp".to_owned(),
            Arc::new(crate::table::ChunkedRelation::new(chunks, delta)),
        );
        ChunkedDb { rows, chunked }
    }

    #[test]
    fn chunked_scan_matches_row_scan_and_tags_whole_chunks() {
        let db = chunked_db(512, 2048);
        let phys = lower(&LogicalPlan::scan("emp", db.rows["emp"].schema().clone())).unwrap();
        let batches = execute_batches(&phys, &db).unwrap();
        // 4 sealed chunks + 1 delta window of 952 rows.
        assert_eq!(batches.len(), 5);
        assert!(batches[..4].iter().all(|b| b.chunk.is_some()), "whole chunks tagged");
        assert!(batches[4].chunk.is_none(), "delta window untagged");
        let via_chunks = execute_physical(&phys, &db).unwrap().canonicalized();
        let via_rows = execute_physical(&phys, &db.rows).unwrap().canonicalized();
        assert_eq!(via_chunks, via_rows);
    }

    #[test]
    fn chunked_scan_serves_columns_without_pivoting_rows() {
        let db = chunked_db(1024, 1024);
        let chunk = &db.chunked["emp"].chunks()[0];
        let batch = Batch::from_sealed_chunk(chunk, None);
        let (cols, sel) = batch.to_columns();
        assert!(sel.is_all());
        // Every column is pre-materialized straight off the sealed form —
        // nothing pivots, and pivoting *back* to rows is refcount gathers
        // of the chunk's own tuples.
        assert_eq!(cols.materialized_count(), 3);
        assert_eq!(batch.tuples(), &chunk.rows()[..]);
        // A projected chunk batch shares the selected columns untagged.
        let projected = Batch::from_sealed_chunk(chunk, Some(&[2, 0]));
        assert!(projected.chunk.is_none());
        assert_eq!(projected.len(), 1024);
        assert_eq!(projected.value_at(0, 0), chunk.rows()[0].get(2).clone());
    }

    #[test]
    fn zone_pruning_skips_chunks_and_keeps_results_exact() {
        let db = chunked_db(512, 2048);
        // `id < 600` refutes chunks [1024,1536) and [1536,2048) by zone
        // map alone (id is clustered), keeps chunks 0-1 and the delta.
        let plan = LogicalPlan::scan("emp", db.rows["emp"].schema().clone()).select(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(600)),
        );
        let mut phys = lower(&plan).unwrap();
        phys.push_prune_hints();
        let (scanned0, pruned0) = chunk_scan_counters();
        let out = execute_physical(&phys, &db).unwrap().canonicalized();
        let (scanned1, pruned1) = chunk_scan_counters();
        assert_eq!(scanned1 - scanned0, 2);
        assert_eq!(pruned1 - pruned0, 2);
        let oracle = eval(&plan, &db.rows).unwrap().canonicalized();
        assert_eq!(out, oracle);
        // Without hints nothing is pruned and the result is identical.
        let unhinted = lower(&plan).unwrap();
        let (_, pruned2) = chunk_scan_counters();
        let out2 = execute_physical(&unhinted, &db).unwrap().canonicalized();
        let (_, pruned3) = chunk_scan_counters();
        assert_eq!(pruned3 - pruned2, 0);
        assert_eq!(out2, oracle);
    }

    #[test]
    fn all_pruned_chunks_still_scan_the_delta() {
        let db = chunked_db(512, 2048);
        // Matches only delta rows (ids 2048..2999).
        let plan = LogicalPlan::scan("emp", db.rows["emp"].schema().clone()).select(
            ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(2500)),
        );
        let mut phys = lower(&plan).unwrap();
        phys.push_prune_hints();
        let (scanned0, pruned0) = chunk_scan_counters();
        let out = execute_physical(&phys, &db).unwrap().canonicalized();
        let (scanned1, pruned1) = chunk_scan_counters();
        assert_eq!(scanned1 - scanned0, 0);
        assert_eq!(pruned1 - pruned0, 4);
        assert_eq!(out, eval(&plan, &db.rows).unwrap().canonicalized());
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn pooled_chunked_scan_is_bit_identical_to_serial() {
        let db = chunked_db(512, 2048);
        let plan = LogicalPlan::scan("emp", db.rows["emp"].schema().clone())
            .select(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(2),
                ScalarExpr::lit(50.0),
            ))
            .project_cols(&[0, 1])
            .unwrap();
        let mut phys = lower(&plan).unwrap();
        phys.push_prune_hints();
        let serial: Vec<Tuple> = open_batches(&phys, &db)
            .unwrap()
            .drain()
            .unwrap()
            .into_iter()
            .flat_map(Batch::into_tuples)
            .collect();
        for workers in [2usize, 4] {
            let pool = prisma_poolx::WorkerPool::new(workers);
            let pooled: Vec<Tuple> = open_batches_pooled(&phys, &db, Some(Arc::clone(&pool)))
                .unwrap()
                .drain()
                .unwrap()
                .into_iter()
                .flat_map(Batch::into_tuples)
                .collect();
            assert_eq!(pooled, serial, "workers={workers}");
            assert!(pool.stats().morsels > 0, "pool unused at {workers} workers");
        }
    }

    #[test]
    fn whole_chunk_batches_ship_the_cached_wire_block() {
        let db = chunked_db(1024, 2048);
        let chunk = &db.chunked["emp"].chunks()[0];
        let a = Batch::from_sealed_chunk(chunk, None).encode_columnar_shared();
        let b = Batch::from_sealed_chunk(chunk, None).encode_columnar_shared();
        assert!(Arc::ptr_eq(&a, &b), "second ship reuses the cached frame");
        // The cached frame round-trips to exactly the chunk's rows.
        let back = Batch::from_block(&a).unwrap();
        assert_eq!(back.tuples(), &chunk.rows()[..]);
        // An identity projection is a whole-chunk view: still cached.
        let c = Batch::from_sealed_chunk(chunk, Some(&[0, 1, 2])).encode_columnar_shared();
        assert!(Arc::ptr_eq(&a, &c), "identity projection reuses the cache");
        // A narrowing projection is untagged and pays a fresh encode.
        let d = Batch::from_sealed_chunk(chunk, Some(&[0, 1])).encode_columnar_shared();
        assert!(!Arc::ptr_eq(&a, &d));
    }
}
