//! Materialized relations.

use std::fmt;

use prisma_storage::FastSet;
use prisma_types::{Result, Schema, Tuple};

/// A materialized table: a schema plus a bag of tuples.
///
/// `Relation` is the unit that flows between operators in the reference
/// evaluator, between OFMs and the executor, and back to clients as query
/// results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Relation from parts. Tuples are *not* re-validated here; use
    /// [`Relation::try_new`] at trust boundaries.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        Relation { schema, tuples }
    }

    /// Validating constructor: every tuple must satisfy the schema.
    pub fn try_new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            schema.check_tuple(t.values())?;
        }
        Ok(Relation { schema, tuples })
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples, in insertion order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple (no validation).
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Consume into tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Consume into parts.
    pub fn into_parts(self) -> (Schema, Vec<Tuple>) {
        (self.schema, self.tuples)
    }

    /// Set-semantics deduplication, preserving first occurrence order.
    pub fn distinct(mut self) -> Relation {
        let mut seen: FastSet<Tuple> = FastSet::default();
        self.tuples.retain(|t| seen.insert(t.clone()));
        self
    }

    /// Total payload bytes (for memory ledgers and shipping costs).
    pub fn byte_size(&self) -> usize {
        self.tuples.iter().map(Tuple::byte_size).sum()
    }

    /// Wire size in bits when shipped between PEs.
    pub fn wire_bits(&self) -> u64 {
        self.tuples.iter().map(Tuple::wire_bits).sum()
    }

    /// Sort by the given `(column, ascending)` keys (stable).
    pub fn sorted_by(mut self, keys: &[(usize, bool)]) -> Relation {
        self.tuples.sort_by(|a, b| {
            for &(col, asc) in keys {
                let ord = a.get(col).total_cmp(b.get(col));
                let ord = if asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self
    }

    /// A canonical form for comparing results regardless of tuple order:
    /// all columns ascending.
    pub fn canonicalized(self) -> Relation {
        let keys: Vec<(usize, bool)> = (0..self.schema.arity()).map(|i| (i, true)).collect();
        self.sorted_by(&keys)
    }
}

impl fmt::Display for Relation {
    /// Pretty-print as an ASCII table (used by examples and the REPL).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| {
                t.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &rows {
            write!(f, "|")?;
            for (v, w) in row.iter().zip(&widths) {
                write!(f, " {v:<w$} |")?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        write!(f, "{} tuple(s)", self.len())
    }
}

/// A two-tier scan source: a fragment's sealed columnar chunks plus its
/// row-oriented delta, snapshotted together.
///
/// Providers that store fragments two-tier (`prisma-ofm`) hand this out
/// through [`crate::RelationProvider::chunked`]; the executor's chunk scan
/// serves the sealed chunks as ready-made column batches (zero row pivot,
/// zone-map pruning) and appends the delta through the ordinary row path.
/// The logical contents are exactly `chunks ⧺ delta` — the same multiset a
/// row scan of the fragment would produce.
#[derive(Debug, Clone)]
pub struct ChunkedRelation {
    schema: Schema,
    chunks: Vec<std::sync::Arc<prisma_types::SealedChunk>>,
    delta: std::sync::Arc<Relation>,
}

impl ChunkedRelation {
    /// Snapshot from parts. `delta`'s schema is the relation's schema.
    pub fn new(
        chunks: Vec<std::sync::Arc<prisma_types::SealedChunk>>,
        delta: Relation,
    ) -> ChunkedRelation {
        ChunkedRelation {
            schema: delta.schema().clone(),
            chunks,
            delta: std::sync::Arc::new(delta),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Sealed chunks in scan order.
    pub fn chunks(&self) -> &[std::sync::Arc<prisma_types::SealedChunk>] {
        &self.chunks
    }

    /// The row-oriented delta (scanned after the chunks).
    pub fn delta(&self) -> &std::sync::Arc<Relation> {
        &self.delta
    }

    /// Total rows across both tiers.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum::<usize>() + self.delta.len()
    }

    /// True when both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
        ]);
        Relation::new(
            schema,
            vec![tuple![2, "x"], tuple![1, "y"], tuple![2, "x"]],
        )
    }

    #[test]
    fn distinct_preserves_first_occurrence() {
        let d = rel().distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.tuples()[0], tuple![2, "x"]);
    }

    #[test]
    fn try_new_validates() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        assert!(Relation::try_new(schema.clone(), vec![tuple![1]]).is_ok());
        assert!(Relation::try_new(schema, vec![tuple!["oops"]]).is_err());
    }

    #[test]
    fn sorting() {
        let s = rel().sorted_by(&[(0, true)]);
        assert_eq!(s.tuples()[0], tuple![1, "y"]);
        let d = rel().sorted_by(&[(0, false)]);
        assert_eq!(d.tuples()[0].get(0).as_int(), Some(2));
    }

    #[test]
    fn canonicalized_ignores_order() {
        let a = rel().canonicalized();
        let mut r = rel();
        r.tuples.reverse();
        let b = r.canonicalized();
        assert_eq!(a, b);
    }

    #[test]
    fn display_renders_table() {
        let txt = rel().to_string();
        assert!(txt.contains("| a | b   |") || txt.contains("| a |"), "{txt}");
        assert!(txt.ends_with("3 tuple(s)"));
    }
}
