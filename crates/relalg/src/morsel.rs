//! Morsel-driven intra-fragment parallelism.
//!
//! The executor in [`crate::exec`] runs one operator tree per fragment on
//! the owning PE's actor thread. When a [`WorkerPool`] is attached
//! ([`crate::exec::open_batches_pooled`]), the compute-heavy spans of
//! that tree are cut into **morsels** — [`BATCH_SIZE`]-row ranges — and
//! dispatched to the pool's work-stealing workers:
//!
//! * a scan→filter→project pipeline fragment becomes a parallel
//!   pipeline operator (`ParPipelineOp`): waves of morsels run the
//!   whole stage chain worker-side, and the outputs are emitted in
//!   morsel order;
//! * a hash-join build side is split into contiguous batch chunks, each
//!   worker builds a private partial table, and the partials merge at
//!   the pipeline breaker in chunk order;
//! * a hash-aggregate input likewise folds into per-worker partial
//!   group tables merged in chunk order (see [`Accumulator::merge`]);
//! * probe batches are themselves split row-wise across workers, with
//!   per-morsel outputs concatenated in order.
//!
//! **Every merge is ordered by morsel position**, which makes pooled
//! execution *bit-identical* to the serial baseline — same batches, same
//! row order, same float rounding — not merely equal up to reordering.
//! Determinism therefore cannot depend on steal interleavings; only the
//! wall-clock (and the pool's busy/steal counters) do.
//!
//! Parallelism stays strictly inside the PE: this module never touches
//! the actor runtime, the traffic ledger, or the wire protocol. A
//! fragment's output crosses the PE boundary exactly as before, batch by
//! batch through [`crate::exec::BatchStream`].

use std::collections::VecDeque;
use std::sync::Arc;

use prisma_poolx::{Job, WorkerPool};
use prisma_storage::FastMap;
use prisma_types::{Result, SelVec, Tuple, Value};

use crate::agg::{Accumulator, AggExpr, AggFunc};
use crate::exec::{Batch, Operator, BATCH_SIZE};
use crate::table::Relation;

/// Morsels dispatched per wave, as a multiple of the pool width: enough
/// slack that a stolen straggler rebalances, small enough that a wave's
/// output stays a handful of batches (the stream stays incremental).
const WAVE_MORSELS_PER_WORKER: usize = 4;

/// Minimum live rows before splitting a probe batch across workers —
/// below this the scatter overhead beats the win.
const PAR_PROBE_MIN_ROWS: usize = 512;

/// One compiled stage of a scan-rooted pipeline fragment.
#[derive(Clone)]
pub(crate) enum Stage {
    /// Vectorized filter (each worker clones its own scratch).
    Filter(prisma_storage::expr::CompiledVecPredicate),
    /// Vectorized projection. `identity` is `Some(n)` for a pure
    /// `Col(0)..Col(n-1)` rename, which passes whole-chunk batches of
    /// arity `n` through untouched (preserving the sealed-chunk tag and
    /// its cached wire block).
    Project {
        exprs: Vec<prisma_storage::expr::CompiledVecExpr>,
        identity: Option<usize>,
    },
}

/// A scan→(filter|project)* chain executed morsel-parallel: the source
/// relation is cut into [`BATCH_SIZE`]-row morsels, a wave of them runs
/// the full stage chain on the pool, and results are emitted in morsel
/// order (identical to the serial operator chain's output).
pub(crate) struct ParPipelineOp {
    rel: Arc<Relation>,
    projection: Option<Vec<usize>>,
    stages: Vec<Stage>,
    pool: Arc<WorkerPool>,
    next_row: usize,
    ready: VecDeque<Batch>,
}

impl ParPipelineOp {
    pub(crate) fn new(
        rel: Arc<Relation>,
        projection: Option<Vec<usize>>,
        stages: Vec<Stage>,
        pool: Arc<WorkerPool>,
    ) -> ParPipelineOp {
        ParPipelineOp {
            rel,
            projection,
            stages,
            pool,
            next_row: 0,
            ready: VecDeque::new(),
        }
    }

    /// Whether the pooled pipeline is worth it for this source: at least
    /// two morsels and some per-row compute (a bare scan is zero-copy
    /// window arithmetic — nothing to parallelize).
    pub(crate) fn eligible(rows: usize, stages: &[Stage], projection: &Option<Vec<usize>>) -> bool {
        rows > BATCH_SIZE && (!stages.is_empty() || projection.is_some())
    }

    fn run_wave(&mut self) {
        let wave = self.pool.workers() * WAVE_MORSELS_PER_WORKER;
        let mut ranges = Vec::with_capacity(wave);
        while ranges.len() < wave && self.next_row < self.rel.len() {
            let end = (self.next_row + BATCH_SIZE).min(self.rel.len());
            ranges.push((self.next_row, end));
            self.next_row = end;
        }
        let mut slots: Vec<Option<Batch>> = ranges.iter().map(|_| None).collect();
        {
            let rel = &self.rel;
            let projection = &self.projection;
            let stages = &self.stages;
            let jobs: Vec<Job> = slots
                .iter_mut()
                .zip(&ranges)
                .map(|(slot, &(start, end))| {
                    Box::new(move || {
                        *slot = run_morsel(rel, projection, stages, start, end);
                    }) as Job
                })
                .collect();
            self.pool.run(jobs);
        }
        self.ready.extend(slots.into_iter().flatten());
    }
}

impl Operator for ParPipelineOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if let Some(b) = self.ready.pop_front() {
                return Ok(Some(b));
            }
            if self.next_row >= self.rel.len() {
                return Ok(None);
            }
            self.run_wave();
        }
    }
}

/// Run the full stage chain over one morsel of the source relation.
/// Mirrors `ScanOp` → `FilterOp` → `ProjectOp` exactly, one batch deep.
fn run_morsel(
    rel: &Arc<Relation>,
    projection: &Option<Vec<usize>>,
    stages: &[Stage],
    start: usize,
    end: usize,
) -> Option<Batch> {
    let batch = match projection {
        None => Batch::shared(Arc::clone(rel), start, end),
        Some(cols) => Batch::owned(
            rel.tuples()[start..end]
                .iter()
                .map(|t| t.project(cols))
                .collect(),
        ),
    };
    run_stages(batch, stages)
}

/// Push one source batch through the stage chain — the per-morsel kernel
/// shared by the relation-backed and chunk-backed pipelines (mirrors
/// `FilterOp` → `ProjectOp` exactly, one batch deep).
fn run_stages(mut batch: Batch, stages: &[Stage]) -> Option<Batch> {
    for stage in stages {
        if batch.is_empty() {
            return None;
        }
        match stage {
            Stage::Filter(pred) => {
                let mut pred = pred.clone();
                let (cols, sel) = batch.to_columns();
                let mut sel_buf = Vec::new();
                pred.select(&cols, &sel, &mut sel_buf);
                if sel_buf.is_empty() {
                    return None;
                }
                let kept = if sel_buf.len() == sel.count() && sel.is_all() {
                    SelVec::all(sel.len())
                } else {
                    SelVec::from_indices(sel.len(), sel_buf)
                };
                batch = Batch::columns_shared(cols, kept);
            }
            Stage::Project { exprs, identity } => {
                if let (Some(n), Some(chunk)) = (identity, batch.sealed_chunk()) {
                    if chunk.arity() == *n {
                        continue; // pure rename: keep the tagged batch
                    }
                }
                let (cols, sel) = batch.to_columns();
                let out: Vec<_> = exprs.iter().map(|e| e.eval(&cols, &sel)).collect();
                batch = Batch::columns(out, SelVec::all(sel.count()));
            }
        }
    }
    if batch.is_empty() {
        None
    } else {
        Some(batch)
    }
}

/// The chunked-scan counterpart of [`ParPipelineOp`]: scan units — whole
/// sealed chunks plus delta windows, pre-pruned by the zone maps at open
/// time — are the morsels. Waves of units run the stage chain on the
/// pool's workers and outputs merge in unit order, so the pooled chunked
/// scan is bit-identical to the serial [`crate::exec`] chunk scan.
pub(crate) struct ParChunkPipelineOp {
    units: Vec<crate::exec::ScanUnit>,
    projection: Option<Vec<usize>>,
    stages: Vec<Stage>,
    pool: Arc<WorkerPool>,
    next_unit: usize,
    ready: VecDeque<Batch>,
}

impl ParChunkPipelineOp {
    pub(crate) fn new(
        units: Vec<crate::exec::ScanUnit>,
        projection: Option<Vec<usize>>,
        stages: Vec<Stage>,
        pool: Arc<WorkerPool>,
    ) -> ParChunkPipelineOp {
        ParChunkPipelineOp {
            units,
            projection,
            stages,
            pool,
            next_unit: 0,
            ready: VecDeque::new(),
        }
    }

    fn run_wave(&mut self) {
        let wave = self.pool.workers() * WAVE_MORSELS_PER_WORKER;
        let end = (self.next_unit + wave).min(self.units.len());
        let wave_units = &self.units[self.next_unit..end];
        self.next_unit = end;
        let mut slots: Vec<Option<Batch>> = wave_units.iter().map(|_| None).collect();
        {
            let projection = &self.projection;
            let stages = &self.stages;
            let jobs: Vec<Job> = slots
                .iter_mut()
                .zip(wave_units)
                .map(|(slot, unit)| {
                    Box::new(move || {
                        if unit.len() > 0 {
                            *slot = run_stages(unit.batch(projection.as_deref()), stages);
                        }
                    }) as Job
                })
                .collect();
            self.pool.run(jobs);
        }
        self.ready.extend(slots.into_iter().flatten());
    }
}

impl Operator for ParChunkPipelineOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if let Some(b) = self.ready.pop_front() {
                return Ok(Some(b));
            }
            if self.next_unit >= self.units.len() {
                return Ok(None);
            }
            self.run_wave();
        }
    }
}

// ---------------- hash-join helpers ----------------

/// Type of a hash-join build table (also the serial executor's).
pub(crate) type JoinTable = FastMap<Vec<Value>, Vec<Tuple>>;

/// Build a join table from the drained build side in parallel: workers
/// build private partial tables over contiguous batch chunks, and the
/// partials merge in chunk order — so each key's candidate vector lists
/// rows in exactly the order the serial single-threaded build would.
pub(crate) fn parallel_build(pool: &WorkerPool, batches: &[Batch], rkeys: &[usize]) -> JoinTable {
    let chunks = chunk_ranges(batches.len(), pool.workers());
    let mut partials: Vec<Option<JoinTable>> = chunks.iter().map(|_| None).collect();
    {
        let jobs: Vec<Job> = partials
            .iter_mut()
            .zip(&chunks)
            .map(|(slot, &(start, end))| {
                Box::new(move || {
                    let mut table = JoinTable::default();
                    for batch in &batches[start..end] {
                        insert_build_batch(&mut table, batch, rkeys);
                    }
                    *slot = Some(table);
                }) as Job
            })
            .collect();
        pool.run(jobs);
    }
    let mut partials = partials.into_iter().flatten();
    let mut table = partials.next().unwrap_or_default();
    for partial in partials {
        for (key, rows) in partial {
            table.entry(key).or_default().extend(rows);
        }
    }
    table
}

/// One build batch into a table — shared by the serial and parallel
/// paths so they cannot diverge.
pub(crate) fn insert_build_batch(table: &mut JoinTable, batch: &Batch, rkeys: &[usize]) {
    for row in 0..batch.len() {
        let key = batch.key_at(row, rkeys);
        // SQL equi-joins never match NULL keys.
        if key.iter().any(Value::is_null) {
            continue;
        }
        table
            .entry(key)
            .or_default()
            .push(batch.tuples()[row].clone());
    }
}

/// Probe one batch against the table with the rows split across workers;
/// per-morsel outputs concatenate in row order, matching the serial
/// probe loop. `probe_rows` is the row-at-a-time kernel both paths share.
pub(crate) fn parallel_probe<F>(pool: &WorkerPool, batch: &Batch, probe_rows: F) -> Vec<Tuple>
where
    F: Fn(&Batch, usize, usize) -> Vec<Tuple> + Sync,
{
    let rows = batch.len();
    if rows < PAR_PROBE_MIN_ROWS {
        return probe_rows(batch, 0, rows);
    }
    let morsel = rows.div_ceil(pool.workers()).max(1);
    let ranges: Vec<(usize, usize)> = (0..rows)
        .step_by(morsel)
        .map(|s| (s, (s + morsel).min(rows)))
        .collect();
    let mut slots: Vec<Vec<Tuple>> = ranges.iter().map(|_| Vec::new()).collect();
    {
        let probe_rows = &probe_rows;
        let jobs: Vec<Job> = slots
            .iter_mut()
            .zip(&ranges)
            .map(|(slot, &(start, end))| {
                Box::new(move || {
                    *slot = probe_rows(batch, start, end);
                }) as Job
            })
            .collect();
        pool.run(jobs);
    }
    let mut out = Vec::with_capacity(slots.iter().map(Vec::len).sum());
    for s in slots {
        out.extend(s);
    }
    out
}

// ---------------- hash-aggregate helpers ----------------

/// One worker's partial aggregation state: group table plus first-seen
/// key order *within the worker's contiguous chunk*.
struct AggPartial {
    groups: FastMap<Vec<Value>, Vec<Accumulator>>,
    order: Vec<Vec<Value>>,
}

/// Aggregate the drained input in parallel: per-worker partials over
/// contiguous batch chunks, folded in chunk order. Because chunks are
/// contiguous and partial key orders are first-seen, folding them in
/// chunk order reproduces the serial first-seen group order and the
/// serial accumulator fold order exactly.
#[allow(clippy::type_complexity)]
pub(crate) fn parallel_aggregate(
    pool: &WorkerPool,
    batches: &[Batch],
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Result<(FastMap<Vec<Value>, Vec<Accumulator>>, Vec<Vec<Value>>)> {
    let chunks = chunk_ranges(batches.len(), pool.workers());
    let mut partials: Vec<Option<Result<AggPartial>>> = chunks.iter().map(|_| None).collect();
    {
        let jobs: Vec<Job> = partials
            .iter_mut()
            .zip(&chunks)
            .map(|(slot, &(start, end))| {
                Box::new(move || {
                    *slot = Some(aggregate_chunk(&batches[start..end], group_by, aggs));
                }) as Job
            })
            .collect();
        pool.run(jobs);
    }
    let mut groups: FastMap<Vec<Value>, Vec<Accumulator>> = FastMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for partial in partials.into_iter().flatten() {
        let partial = partial?;
        for key in partial.order {
            let accs = &partial.groups[&key];
            match groups.get_mut(&key) {
                Some(existing) => {
                    for (acc, part) in existing.iter_mut().zip(accs) {
                        acc.merge(part)?;
                    }
                }
                None => {
                    order.push(key.clone());
                    groups.insert(key, accs.clone());
                }
            }
        }
    }
    Ok((groups, order))
}

/// Serial aggregation over one contiguous chunk of batches.
fn aggregate_chunk(batches: &[Batch], group_by: &[usize], aggs: &[AggExpr]) -> Result<AggPartial> {
    let mut partial = AggPartial {
        groups: FastMap::default(),
        order: Vec::new(),
    };
    for batch in batches {
        update_agg_batch(&mut partial.groups, &mut partial.order, batch, group_by, aggs)?;
    }
    Ok(partial)
}

/// Fold one batch into a group table, recording first-seen key order —
/// the update loop shared by the serial `HashAggOp` and every parallel
/// partial, so the two paths cannot diverge.
pub(crate) fn update_agg_batch(
    groups: &mut FastMap<Vec<Value>, Vec<Accumulator>>,
    order: &mut Vec<Vec<Value>>,
    batch: &Batch,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Result<()> {
    for row in 0..batch.len() {
        let key = batch.key_at(row, group_by);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| Accumulator::new(a.func)).collect()
        });
        for (acc, a) in accs.iter_mut().zip(aggs) {
            let v = if a.func == AggFunc::CountStar {
                Value::Bool(true) // placeholder; COUNT(*) counts rows
            } else {
                batch.value_at(row, a.col)
            };
            acc.update(&v)?;
        }
    }
    Ok(())
}

/// Split `n` items into at most `parts` contiguous, near-equal ranges.
fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_contiguous_and_cover() {
        for n in [0usize, 1, 2, 5, 7, 16] {
            for parts in [1usize, 2, 3, 4, 8] {
                let r = chunk_ranges(n, parts);
                let mut pos = 0;
                for &(s, e) in &r {
                    assert_eq!(s, pos);
                    assert!(e > s);
                    pos = e;
                }
                assert_eq!(pos, n);
                assert!(r.len() <= parts.max(1));
            }
        }
    }
}
