//! Aggregate functions.

use std::fmt;

use prisma_types::{DataType, PrismaError, Result, Value};

/// The aggregate functions of the SQL front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows including NULLs.
    CountStar,
    /// `COUNT(col)` — counts non-NULL values.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// One aggregate in an `Aggregate` plan node: function + input column
/// (ignored for `CountStar`) + output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input column ordinal (unused for COUNT(*)).
    pub col: usize,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Construct.
    pub fn new(func: AggFunc, col: usize, name: impl Into<String>) -> Self {
        AggExpr {
            func,
            col,
            name: name.into(),
        }
    }

    /// Output type given the input column type.
    pub fn output_type(&self, input: DataType) -> Result<DataType> {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Ok(DataType::Int),
            AggFunc::Sum => {
                if input.is_numeric() {
                    Ok(input)
                } else {
                    Err(PrismaError::ExprType(format!("SUM over {input}")))
                }
            }
            AggFunc::Avg => {
                if input.is_numeric() {
                    Ok(DataType::Double)
                } else {
                    Err(PrismaError::ExprType(format!("AVG over {input}")))
                }
            }
            AggFunc::Min | AggFunc::Max => Ok(input),
        }
    }
}

/// Streaming accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: Option<Value>,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: None,
            min: None,
            max: None,
        }
    }

    /// Feed one value (the row itself for COUNT(*); NULLs are skipped for
    /// all others per SQL).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return Ok(());
        }
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Sum | AggFunc::Avg => {
                self.sum = Some(match &self.sum {
                    None => v.clone(),
                    Some(acc) => acc
                        .add(v)
                        .ok_or_else(|| PrismaError::Arithmetic(format!("SUM overflow at {v}")))?,
                });
            }
            AggFunc::Min => {
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
            AggFunc::Count | AggFunc::CountStar => {}
        }
        Ok(())
    }

    /// Fold another partial accumulator of the same function into this
    /// one, as if every value `other` saw had been fed to `self`. This is
    /// the pipeline-breaker step of morsel-parallel aggregation: each
    /// worker accumulates privately, then the partials merge. All the
    /// functions here are commutative-associative folds, so `self` first
    /// vs `other` first only matters for floating-point rounding — and
    /// the executor merges partials in morsel order precisely so the
    /// result is bit-identical to the serial scan.
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        debug_assert_eq!(self.func, other.func);
        self.count += other.count;
        if let Some(v) = &other.sum {
            self.sum = Some(match &self.sum {
                None => v.clone(),
                Some(acc) => acc
                    .add(v)
                    .ok_or_else(|| PrismaError::Arithmetic(format!("SUM overflow at {v}")))?,
            });
        }
        if let Some(v) = &other.min {
            if self.min.as_ref().is_none_or(|m| v < m) {
                self.min = Some(v.clone());
            }
        }
        if let Some(v) = &other.max {
            if self.max.as_ref().is_none_or(|m| v > m) {
                self.max = Some(v.clone());
            }
        }
        Ok(())
    }

    /// The aggregate result. Empty-input semantics follow SQL: COUNT is 0,
    /// everything else NULL.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => self.sum.clone().unwrap_or(Value::Null),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => match &self.sum {
                None => Value::Null,
                Some(s) => {
                    let total = s.as_double().unwrap_or(0.0);
                    Value::Double(total / self.count as f64)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn basic_aggregates() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(1), Value::Int(6)];
        assert_eq!(run(AggFunc::CountStar, &vals), Value::Int(4));
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(10));
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(6));
        assert_eq!(
            run(AggFunc::Avg, &vals),
            Value::Double(10.0 / 3.0)
        );
    }

    #[test]
    fn empty_input_semantics() {
        assert_eq!(run(AggFunc::CountStar, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(
            AggExpr::new(AggFunc::Avg, 0, "a").output_type(DataType::Int).unwrap(),
            DataType::Double
        );
        assert_eq!(
            AggExpr::new(AggFunc::Sum, 0, "s").output_type(DataType::Double).unwrap(),
            DataType::Double
        );
        assert!(AggExpr::new(AggFunc::Sum, 0, "s")
            .output_type(DataType::Str)
            .is_err());
        assert_eq!(
            AggExpr::new(AggFunc::Min, 0, "m").output_type(DataType::Str).unwrap(),
            DataType::Str
        );
    }

    #[test]
    fn merged_partials_agree_with_one_pass() {
        let vals: Vec<Value> = (0..100)
            .map(|i| if i % 7 == 0 { Value::Null } else { Value::Int(i) })
            .collect();
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let serial = run(func, &vals);
            // Split into three uneven partials and merge in order.
            let mut merged = Accumulator::new(func);
            for chunk in [&vals[..13], &vals[13..60], &vals[60..]] {
                let mut part = Accumulator::new(func);
                for v in chunk {
                    part.update(v).unwrap();
                }
                merged.merge(&part).unwrap();
            }
            assert_eq!(merged.finish(), serial, "{func}");
        }
        // Merging an empty partial is a no-op.
        let mut acc = Accumulator::new(AggFunc::Min);
        acc.update(&Value::Int(5)).unwrap();
        acc.merge(&Accumulator::new(AggFunc::Min)).unwrap();
        assert_eq!(acc.finish(), Value::Int(5));
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        acc.update(&Value::Int(i64::MAX)).unwrap();
        assert!(acc.update(&Value::Int(1)).is_err());
    }

    #[test]
    fn min_max_on_strings() {
        let vals = vec![Value::from("pear"), Value::from("apple")];
        assert_eq!(run(AggFunc::Min, &vals), Value::from("apple"));
        assert_eq!(run(AggFunc::Max, &vals), Value::from("pear"));
    }
}
