//! Reference evaluator for logical plans.
//!
//! This evaluator is the single-node *semantics oracle* of the algebra:
//! the batch executor in [`crate::exec`] — which the OFMs and the
//! distributed executor in `prisma-gdh` actually run — must produce the
//! same result as evaluating the plan here against the union of all
//! fragments (tests enforce this). Keep it simple and obviously correct;
//! performance work belongs in the physical pipeline.

use prisma_storage::{FastMap, FastSet};
use prisma_types::{PrismaError, Result, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

use crate::agg::Accumulator;
use crate::plan::{JoinKind, LogicalPlan};
use crate::table::Relation;

/// Source of named base relations.
///
/// Returns `Arc<Relation>` so providers backed by shared storage (OFM
/// fragments, executor memos, fixpoint bindings) hand out references
/// instead of deep-copying the relation on every lookup.
pub trait RelationProvider {
    /// Materialize (or reference) the relation called `name`.
    fn relation(&self, name: &str) -> Result<Arc<Relation>>;

    /// The two-tier (sealed chunks + delta) form of `name`, when the
    /// provider stores it that way. `None` (the default) routes the scan
    /// through [`RelationProvider::relation`]'s row path; a `Some` must
    /// hold exactly the same tuples `relation(name)` would return.
    fn chunked(&self, _name: &str) -> Option<Arc<crate::table::ChunkedRelation>> {
        None
    }
}

impl RelationProvider for HashMap<String, Relation> {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.get(name)
            .map(|r| Arc::new(r.clone()))
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }
}

/// Zero-copy provider: maps that already hold `Arc`s share them directly.
impl RelationProvider for HashMap<String, Arc<Relation>> {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.get(name)
            .map(Arc::clone)
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }
}

/// Evaluation context: a provider plus transient bindings (fixpoint
/// accumulators and deltas shadow base relations by name). Bindings are
/// `Arc`-shared, so binding the accumulator each iteration costs a
/// refcount bump, not a copy of the accumulated relation.
pub struct EvalContext<'a> {
    provider: &'a dyn RelationProvider,
    bindings: HashMap<String, Arc<Relation>>,
    /// Iteration guard for runaway fixpoints.
    max_fixpoint_iterations: usize,
}

impl<'a> EvalContext<'a> {
    /// Context over a provider.
    pub fn new(provider: &'a dyn RelationProvider) -> Self {
        EvalContext {
            provider,
            bindings: HashMap::new(),
            max_fixpoint_iterations: 1_000_000,
        }
    }

    /// Resolve a scan name: fixpoint bindings shadow the provider. Shared
    /// by this evaluator and the batch executor in [`crate::exec`], so the
    /// shadowing contract cannot diverge between oracle and executor.
    pub(crate) fn lookup(&self, name: &str) -> Result<Arc<Relation>> {
        if let Some(r) = self.bindings.get(name) {
            Ok(Arc::clone(r))
        } else {
            self.provider.relation(name)
        }
    }

    /// Resolve a scan name to its two-tier form, when the provider has
    /// one. Bindings (fixpoint accumulators/deltas) are plain relations
    /// and *shadow* the provider, so a bound name never resolves chunked.
    pub(crate) fn lookup_chunked(
        &self,
        name: &str,
    ) -> Option<Arc<crate::table::ChunkedRelation>> {
        if self.bindings.contains_key(name) {
            return None;
        }
        self.provider.chunked(name)
    }

    pub(crate) fn bind(&mut self, name: String, rel: Arc<Relation>) {
        self.bindings.insert(name, rel);
    }

    pub(crate) fn unbind(&mut self, name: &str) {
        self.bindings.remove(name);
    }

    pub(crate) fn max_fixpoint_iterations(&self) -> usize {
        self.max_fixpoint_iterations
    }
}

/// Evaluate `plan` against `provider`.
pub fn eval(plan: &LogicalPlan, provider: &dyn RelationProvider) -> Result<Relation> {
    let mut ctx = EvalContext::new(provider);
    let rel = eval_ctx(plan, &mut ctx)?;
    Ok(Arc::unwrap_or_clone(rel))
}

fn eval_ctx(plan: &LogicalPlan, ctx: &mut EvalContext<'_>) -> Result<Arc<Relation>> {
    Ok(match plan {
        LogicalPlan::Scan { relation, .. } => ctx.lookup(relation)?,
        LogicalPlan::Values { schema, rows } => {
            Arc::new(Relation::new(schema.clone(), rows.clone()))
        }
        LogicalPlan::Select { input, predicate } => {
            let rel = eval_ctx(input, ctx)?;
            let pred = predicate.compile_predicate();
            Arc::new(Relation::new(
                rel.schema().clone(),
                rel.tuples().iter().filter(|t| pred(t)).cloned().collect(),
            ))
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let rel = eval_ctx(input, ctx)?;
            let compiled: Vec<_> = exprs.iter().map(|e| e.compile()).collect();
            let tuples = rel
                .tuples()
                .iter()
                .map(|t| Tuple::new(compiled.iter().map(|f| f(t)).collect()))
                .collect();
            Arc::new(Relation::new(schema.clone(), tuples))
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let l = eval_ctx(left, ctx)?;
            let r = eval_ctx(right, ctx)?;
            Arc::new(join(&l, &r, *kind, on, residual.as_ref())?)
        }
        LogicalPlan::Union { left, right, all } => {
            let l = eval_ctx(left, ctx)?;
            let r = eval_ctx(right, ctx)?;
            let mut tuples = l.tuples().to_vec();
            tuples.extend(r.tuples().iter().cloned());
            let rel = Relation::new(l.schema().clone(), tuples);
            Arc::new(if *all { rel } else { rel.distinct() })
        }
        LogicalPlan::Difference { left, right } => {
            let l = eval_ctx(left, ctx)?;
            let r = eval_ctx(right, ctx)?;
            let exclude: FastSet<&Tuple> = r.tuples().iter().collect();
            let mut seen = FastSet::default();
            Arc::new(Relation::new(
                l.schema().clone(),
                l.tuples()
                    .iter()
                    .filter(|t| !exclude.contains(t) && seen.insert((*t).clone()))
                    .cloned()
                    .collect(),
            ))
        }
        LogicalPlan::Distinct { input } => {
            let rel = eval_ctx(input, ctx)?;
            Arc::new(Relation::new(rel.schema().clone(), rel.tuples().to_vec()).distinct())
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = eval_ctx(input, ctx)?;
            Arc::new(aggregate(&rel, group_by, aggs, plan)?)
        }
        LogicalPlan::Sort { input, keys } => {
            let rel = eval_ctx(input, ctx)?;
            Arc::new(Relation::new(rel.schema().clone(), rel.tuples().to_vec()).sorted_by(keys))
        }
        LogicalPlan::Limit { input, n } => {
            let rel = eval_ctx(input, ctx)?;
            Arc::new(Relation::new(
                rel.schema().clone(),
                rel.tuples().iter().take(*n).cloned().collect(),
            ))
        }
        LogicalPlan::Closure { input } => {
            let rel = eval_ctx(input, ctx)?;
            Arc::new(transitive_closure(&rel)?)
        }
        LogicalPlan::Fixpoint { name, base, step } => {
            let rel = eval_ctx(base, ctx)?;
            let base_rel =
                Relation::new(rel.schema().clone(), rel.tuples().to_vec()).distinct();
            Arc::new(fixpoint(name, base_rel, step, ctx)?)
        }
    })
}

fn join(
    l: &Relation,
    r: &Relation,
    kind: JoinKind,
    on: &[(usize, usize)],
    residual: Option<&prisma_storage::expr::ScalarExpr>,
) -> Result<Relation> {
    let out_schema = match kind {
        JoinKind::Inner => l.schema().join(r.schema()),
        JoinKind::Semi | JoinKind::Anti => l.schema().clone(),
    };
    let pred = residual.map(|p| p.compile_predicate());
    let mut out = Vec::new();

    if on.is_empty() {
        // Pure theta join: nested loops.
        for lt in l.tuples() {
            let mut matched = false;
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                let ok = pred.as_ref().is_none_or(|p| p(&joined));
                if ok {
                    matched = true;
                    if kind == JoinKind::Inner {
                        out.push(joined);
                    } else {
                        break;
                    }
                }
            }
            match kind {
                JoinKind::Semi if matched => out.push(lt.clone()),
                JoinKind::Anti if !matched => out.push(lt.clone()),
                _ => {}
            }
        }
        return Ok(Relation::new(out_schema, out));
    }

    // Hash join: build on the right side.
    let rkeys: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let lkeys: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let mut table: FastMap<Vec<Value>, Vec<&Tuple>> = FastMap::default();
    for rt in r.tuples() {
        let key = rt.key(&rkeys);
        // SQL equi-join never matches NULL keys.
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(rt);
    }
    for lt in l.tuples() {
        let key = lt.key(&lkeys);
        let candidates = if key.iter().any(Value::is_null) {
            &[][..]
        } else {
            table.get(&key).map(Vec::as_slice).unwrap_or(&[])
        };
        let mut matched = false;
        for rt in candidates {
            let joined = lt.concat(rt);
            let ok = pred.as_ref().is_none_or(|p| p(&joined));
            if ok {
                matched = true;
                if kind == JoinKind::Inner {
                    out.push(joined);
                } else {
                    break;
                }
            }
        }
        match kind {
            JoinKind::Semi if matched => out.push(lt.clone()),
            JoinKind::Anti if !matched => out.push(lt.clone()),
            _ => {}
        }
    }
    Ok(Relation::new(out_schema, out))
}

fn aggregate(
    rel: &Relation,
    group_by: &[usize],
    aggs: &[crate::agg::AggExpr],
    plan: &LogicalPlan,
) -> Result<Relation> {
    let out_schema = plan.output_schema()?;
    let mut groups: FastMap<Vec<Value>, Vec<Accumulator>> = FastMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in rel.tuples() {
        let key = t.key(group_by);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| Accumulator::new(a.func)).collect()
        });
        for (acc, a) in accs.iter_mut().zip(aggs) {
            let v = if a.func == crate::agg::AggFunc::CountStar {
                Value::Bool(true) // placeholder; CountStar counts rows
            } else {
                t.get(a.col).clone()
            };
            acc.update(&v)?;
        }
    }
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let row: Vec<Value> = aggs
            .iter()
            .map(|a| Accumulator::new(a.func).finish())
            .collect();
        return Ok(Relation::new(out_schema, vec![Tuple::new(row)]));
    }
    let mut tuples = Vec::with_capacity(groups.len());
    for key in order {
        let accs = &groups[&key];
        let mut row = key;
        row.extend(accs.iter().map(Accumulator::finish));
        tuples.push(Tuple::new(row));
    }
    Ok(Relation::new(out_schema, tuples))
}

/// Semi-naive transitive closure of a binary relation — the OFM operator.
pub fn transitive_closure(rel: &Relation) -> Result<Relation> {
    if rel.schema().arity() != 2 {
        return Err(PrismaError::Execution(format!(
            "closure over arity-{} relation",
            rel.schema().arity()
        )));
    }
    let schema = rel.schema().clone();
    // Adjacency of the base edges.
    let mut adj: FastMap<Value, Vec<Value>> = FastMap::default();
    for t in rel.tuples() {
        adj.entry(t.get(0).clone())
            .or_default()
            .push(t.get(1).clone());
    }
    let mut all: FastSet<(Value, Value)> = FastSet::default();
    let mut delta: Vec<(Value, Value)> = Vec::new();
    for t in rel.tuples() {
        let pair = (t.get(0).clone(), t.get(1).clone());
        if all.insert(pair.clone()) {
            delta.push(pair);
        }
    }
    let mut out: Vec<Tuple> = delta
        .iter()
        .map(|(a, b)| Tuple::new(vec![a.clone(), b.clone()]))
        .collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for (a, b) in &delta {
            if let Some(succs) = adj.get(b) {
                for c in succs {
                    let pair = (a.clone(), c.clone());
                    if all.insert(pair.clone()) {
                        out.push(Tuple::new(vec![pair.0.clone(), pair.1.clone()]));
                        next.push(pair);
                    }
                }
            }
        }
        delta = next;
    }
    Ok(Relation::new(schema, out))
}

/// Naive-iteration transitive closure (whole relation re-joined each round)
/// — kept as the E6 ablation baseline.
pub fn transitive_closure_naive(rel: &Relation) -> Result<Relation> {
    if rel.schema().arity() != 2 {
        return Err(PrismaError::Execution(format!(
            "closure over arity-{} relation",
            rel.schema().arity()
        )));
    }
    let schema = rel.schema().clone();
    let mut adj: FastMap<Value, Vec<Value>> = FastMap::default();
    for t in rel.tuples() {
        adj.entry(t.get(0).clone())
            .or_default()
            .push(t.get(1).clone());
    }
    let mut all: FastSet<(Value, Value)> = rel
        .tuples()
        .iter()
        .map(|t| (t.get(0).clone(), t.get(1).clone()))
        .collect();
    loop {
        // Join the FULL accumulated relation with the edges every round.
        let current: Vec<(Value, Value)> = all.iter().cloned().collect();
        let before = all.len();
        for (a, b) in &current {
            if let Some(succs) = adj.get(b) {
                for c in succs {
                    all.insert((a.clone(), c.clone()));
                }
            }
        }
        if all.len() == before {
            break;
        }
    }
    let out = all
        .into_iter()
        .map(|(a, b)| Tuple::new(vec![a, b]))
        .collect();
    Ok(Relation::new(schema, out))
}

fn fixpoint(
    name: &str,
    base: Relation,
    step: &LogicalPlan,
    ctx: &mut EvalContext<'_>,
) -> Result<Relation> {
    let delta_name = format!("Δ{name}");
    let schema = base.schema().clone();
    let mut all_set: FastSet<Tuple> = base.tuples().iter().cloned().collect();
    let mut acc: Vec<Tuple> = base.tuples().to_vec();
    let mut delta = base;
    let mut iterations = 0;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > ctx.max_fixpoint_iterations {
            return Err(PrismaError::Execution(format!(
                "fixpoint {name} exceeded iteration limit"
            )));
        }
        ctx.bindings.insert(
            name.to_owned(),
            Arc::new(Relation::new(schema.clone(), acc.clone())),
        );
        ctx.bindings.insert(delta_name.clone(), Arc::new(delta));
        let produced = eval_ctx(step, ctx)?;
        let mut fresh = Vec::new();
        for t in produced.tuples() {
            if all_set.insert(t.clone()) {
                fresh.push(t.clone());
            }
        }
        acc.extend(fresh.iter().cloned());
        delta = Relation::new(schema.clone(), fresh);
    }
    ctx.bindings.remove(name);
    ctx.bindings.remove(&delta_name);
    Ok(Relation::new(schema, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggExpr, AggFunc};
    use prisma_types::Schema;
    use prisma_storage::expr::{CmpOp, ScalarExpr};
    use prisma_types::{tuple, Column, DataType};

    fn db() -> HashMap<String, Relation> {
        let emp = Relation::new(
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("dept", DataType::Int),
                Column::new("salary", DataType::Double),
            ]),
            vec![
                tuple![1, 10, 100.0],
                tuple![2, 10, 200.0],
                tuple![3, 20, 300.0],
                tuple![4, 30, 150.0],
            ],
        );
        let dept = Relation::new(
            Schema::new(vec![
                Column::new("dept_id", DataType::Int),
                Column::new("name", DataType::Str),
            ]),
            vec![tuple![10, "eng"], tuple![20, "sales"]],
        );
        let edge = Relation::new(
            Schema::new(vec![
                Column::new("src", DataType::Int),
                Column::new("dst", DataType::Int),
            ]),
            vec![tuple![1, 2], tuple![2, 3], tuple![3, 4]],
        );
        let mut m = HashMap::new();
        m.insert("emp".to_owned(), emp);
        m.insert("dept".to_owned(), dept);
        m.insert("edge".to_owned(), edge);
        m
    }

    fn emp_scan(db: &HashMap<String, Relation>) -> LogicalPlan {
        LogicalPlan::scan("emp", db["emp"].schema().clone())
    }

    #[test]
    fn select_and_project() {
        let db = db();
        let plan = emp_scan(&db)
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit(150.0),
            ))
            .project_cols(&[0])
            .unwrap();
        let out = eval(&plan, &db).unwrap();
        let ids: Vec<i64> = out.tuples().iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn arc_provider_lookup_is_zero_copy() {
        let db = db();
        let shared: HashMap<String, Arc<Relation>> = db
            .iter()
            .map(|(k, v)| (k.clone(), Arc::new(v.clone())))
            .collect();
        let fetched = shared.relation("emp").unwrap();
        assert!(Arc::ptr_eq(&fetched, &shared["emp"]));
        // And the whole evaluator runs against the Arc map.
        let plan = emp_scan(&db).project_cols(&[0]).unwrap();
        assert_eq!(eval(&plan, &shared).unwrap().len(), 4);
    }

    #[test]
    fn hash_join_inner() {
        let db = db();
        let plan = emp_scan(&db).join(
            LogicalPlan::scan("dept", db["dept"].schema().clone()),
            vec![(1, 0)],
        );
        let out = eval(&plan, &db).unwrap();
        assert_eq!(out.len(), 3); // dept 30 has no match
        assert_eq!(out.schema().arity(), 5);
    }

    #[test]
    fn semi_and_anti_join() {
        let db = db();
        let semi = LogicalPlan::Join {
            left: Box::new(emp_scan(&db)),
            right: Box::new(LogicalPlan::scan("dept", db["dept"].schema().clone())),
            kind: JoinKind::Semi,
            on: vec![(1, 0)],
            residual: None,
        };
        assert_eq!(eval(&semi, &db).unwrap().len(), 3);
        let anti = LogicalPlan::Join {
            left: Box::new(emp_scan(&db)),
            right: Box::new(LogicalPlan::scan("dept", db["dept"].schema().clone())),
            kind: JoinKind::Anti,
            on: vec![(1, 0)],
            residual: None,
        };
        let out = eval(&anti, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].get(0).as_int(), Some(4));
    }

    #[test]
    fn theta_join_with_residual() {
        let db = db();
        // emp join emp on e1.salary < e2.salary (no equi keys).
        let plan = LogicalPlan::Join {
            left: Box::new(emp_scan(&db)),
            right: Box::new(emp_scan(&db)),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(2),
                ScalarExpr::col(5),
            )),
        };
        let out = eval(&plan, &db).unwrap();
        // pairs with strictly increasing salary: (100,150),(100,200),(100,300),
        // (150,200),(150,300),(200,300) = 6
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::new(vec![Column::nullable("k", DataType::Int)]);
        let l = Relation::new(schema.clone(), vec![Tuple::new(vec![Value::Null])]);
        let mut db = HashMap::new();
        db.insert("l".to_owned(), l.clone());
        db.insert("r".to_owned(), l);
        let plan = LogicalPlan::scan("l", schema.clone())
            .join(LogicalPlan::scan("r", schema), vec![(0, 0)]);
        assert_eq!(eval(&plan, &db).unwrap().len(), 0);
    }

    #[test]
    fn union_difference_distinct() {
        let db = db();
        let a = emp_scan(&db).project_cols(&[1]).unwrap();
        let union = LogicalPlan::Union {
            left: Box::new(a.clone()),
            right: Box::new(a.clone()),
            all: false,
        };
        assert_eq!(eval(&union, &db).unwrap().len(), 3); // 10, 20, 30
        let union_all = LogicalPlan::Union {
            left: Box::new(a.clone()),
            right: Box::new(a.clone()),
            all: true,
        };
        assert_eq!(eval(&union_all, &db).unwrap().len(), 8);
        let diff = LogicalPlan::Difference {
            left: Box::new(a.clone()),
            right: Box::new(LogicalPlan::Values {
                schema: eval(&a, &db).unwrap().schema().clone(),
                rows: vec![tuple![10]],
            }),
        };
        let out = eval(&diff, &db).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn aggregate_with_groups() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(emp_scan(&db)),
            group_by: vec![1],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Sum, 2, "total"),
            ],
        };
        let out = eval(&plan, &db).unwrap().canonicalized();
        assert_eq!(out.len(), 3);
        // dept 10: n=2, total=300
        assert_eq!(out.tuples()[0], tuple![10, 2, 300.0]);
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let db = db();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(emp_scan(&db).select(ScalarExpr::lit(false))),
            group_by: vec![],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Sum, 2, "s"),
            ],
        };
        let out = eval(&plan, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].get(0), &Value::Int(0));
        assert!(out.tuples()[0].get(1).is_null());
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(emp_scan(&db)),
                keys: vec![(2, false)],
            }),
            n: 2,
        };
        let out = eval(&plan, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].get(0).as_int(), Some(3));
    }

    #[test]
    fn closure_of_chain() {
        let db = db();
        let plan = LogicalPlan::Closure {
            input: Box::new(LogicalPlan::scan("edge", db["edge"].schema().clone())),
        };
        let out = eval(&plan, &db).unwrap();
        // chain 1->2->3->4: pairs = 3+2+1 = 6
        assert_eq!(out.len(), 6);
        let set: FastSet<Tuple> = out.tuples().iter().cloned().collect();
        assert!(set.contains(&tuple![1, 4]));
    }

    #[test]
    fn closure_handles_cycles() {
        let schema = Schema::new(vec![
            Column::new("src", DataType::Int),
            Column::new("dst", DataType::Int),
        ]);
        let mut db = HashMap::new();
        db.insert(
            "g".to_owned(),
            Relation::new(schema.clone(), vec![tuple![1, 2], tuple![2, 1]]),
        );
        let plan = LogicalPlan::Closure {
            input: Box::new(LogicalPlan::scan("g", schema)),
        };
        let out = eval(&plan, &db).unwrap();
        // {(1,2),(2,1),(1,1),(2,2)}
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn naive_and_seminaive_closure_agree() {
        let db = db();
        let semi = transitive_closure(&db["edge"]).unwrap().canonicalized();
        let naive = transitive_closure_naive(&db["edge"])
            .unwrap()
            .canonicalized();
        assert_eq!(semi, naive);
    }

    #[test]
    fn fixpoint_matches_closure() {
        let db = db();
        let edge_schema = db["edge"].schema().clone();
        // path(x,y) :- edge(x,y).  path(x,y) :- Δpath(x,z), edge(z,y).
        let plan = LogicalPlan::Fixpoint {
            name: "path".into(),
            base: Box::new(LogicalPlan::scan("edge", edge_schema.clone())),
            step: Box::new(
                LogicalPlan::scan("Δpath", edge_schema.clone())
                    .join(LogicalPlan::scan("edge", edge_schema.clone()), vec![(1, 0)])
                    .project_cols(&[0, 3])
                    .unwrap(),
            ),
        };
        let fp = eval(&plan, &db).unwrap().canonicalized();
        let tc = eval(
            &LogicalPlan::Closure {
                input: Box::new(LogicalPlan::scan("edge", edge_schema)),
            },
            &db,
        )
        .unwrap()
        .canonicalized();
        assert_eq!(fp, tc);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let db = db();
        let plan = LogicalPlan::scan("ghost", Schema::empty());
        assert!(matches!(
            eval(&plan, &db),
            Err(PrismaError::UnknownRelation(_))
        ));
    }
}
