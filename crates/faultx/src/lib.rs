//! Deterministic fault injection for the PRISMA machine.
//!
//! Every failure scenario in this workspace is a *scripted, seeded* event,
//! never a flake: a [`FaultInjector`] carries an explicit list of
//! [`FaultSpec`]s (kill PE at its Nth delivered message, drop/duplicate/
//! delay the Nth chunk a PE ships, crash while handling a 2PC phase) plus
//! an optional randomized delay mode seeded from the `FAULT_SEED`
//! environment variable. The injector is consulted from two places:
//!
//! * the **OFM actor loop** (`prisma-gdh`) calls [`FaultInjector::on_message`]
//!   at the top of every `handle()`; a dead PE silently swallows the
//!   message (no replies, no sends), which is exactly how a crashed PE
//!   looks to the rest of the machine — reply deadlines fire and failover
//!   takes over;
//! * the **chunk shippers** call [`FaultInjector::chunk_fate`] before each
//!   stream send, and the network simulator (`prisma-multicomputer`)
//!   consults [`FaultInjector::is_dead`]/[`FaultInjector::packet_delay_ns`]
//!   per injected packet.
//!
//! The process-global injector ([`global`]) is inert unless `FAULT_SEED`
//! is set, in which case it randomly *delays* (reorders) stream chunks —
//! the one fault class the streaming protocol is required to mask
//! (`StreamReassembly` reorders by sequence number), so the whole test
//! suite can run under the matrix unchanged. Drops, duplicates and kills
//! are only ever scripted by individual tests.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use prisma_types::PeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which half of two-phase commit a crash point targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPcPhase {
    /// Crash while handling `Prepare` (before voting).
    Prepare,
    /// Crash while handling `Commit` (after the coordinator decided).
    Commit,
}

/// One scripted fault. Message and chunk ordinals are 1-based and counted
/// per PE, so "kill PE 3 at message 7" is reproducible independent of what
/// the rest of the machine does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// PE stops processing at its `at`-th delivered message (that message
    /// and everything after it are swallowed).
    KillPeAtMessage { pe: PeId, at: u64 },
    /// The `nth` chunk PE ships is never sent.
    DropChunk { pe: PeId, nth: u64 },
    /// The `nth` chunk PE ships is sent twice.
    DuplicateChunk { pe: PeId, nth: u64 },
    /// The `nth` chunk PE ships is held back and sent after its successor
    /// (a reorder, which the stream protocol must mask).
    DelayChunk { pe: PeId, nth: u64 },
    /// The `nth` chunk PE ships has its encoded payload mangled in flight
    /// (bit damage on the interconnect). Only meaningful for columnar-wire
    /// chunks, whose frames carry a checksum; the receiver must reject the
    /// frame with a protocol error, never mis-decode it.
    CorruptChunk { pe: PeId, nth: u64 },
    /// PE crashes while handling the given 2PC phase message.
    CrashDuring2pc { pe: PeId, phase: TwoPcPhase },
}

/// What the injector decided for one outgoing chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFate {
    /// Send normally.
    Deliver,
    /// Swallow the send.
    Drop,
    /// Send it twice.
    Duplicate,
    /// Hold it back; ship after the next chunk (reorder).
    Delay,
    /// Mangle the encoded payload before sending (wire bit damage).
    Corrupt,
}

#[derive(Default)]
struct Inner {
    rng: Option<StdRng>,
    /// Probability a chunk is delayed in randomized (suite-matrix) mode.
    delay_prob: f64,
    scripted: Vec<FaultSpec>,
    used: Vec<bool>,
    /// Messages delivered per PE (1-based ordinals).
    msgs: HashMap<usize, u64>,
    /// Chunks shipped per PE (1-based ordinals).
    chunks: HashMap<usize, u64>,
    dead: HashSet<usize>,
    events: Vec<String>,
}

impl Inner {
    fn fire(&mut self, i: usize, event: String) {
        self.used[i] = true;
        self.events.push(event);
    }
}

/// A deterministic fault injector, shareable across actors and threads.
///
/// Inert by default: every hook is a cheap no-op when no faults are
/// scripted and no random mode is armed, so production paths pay one
/// atomic load per message.
pub struct FaultInjector {
    /// Fast path: false means every hook returns "no fault" immediately.
    active: std::sync::atomic::AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            active: std::sync::atomic::AtomicBool::new(false),
            inner: Mutex::new(Inner::default()),
        }
    }
}

impl FaultInjector {
    /// An injector that never injects anything.
    pub fn inert() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// An injector executing exactly `specs`, with ties broken by the
    /// seeded RNG (also used by randomized modes layered on top).
    pub fn scripted(seed: u64, specs: Vec<FaultSpec>) -> Arc<FaultInjector> {
        let inj = FaultInjector::default();
        {
            let mut inner = inj.inner.lock();
            inner.rng = Some(StdRng::seed_from_u64(seed));
            inner.used = vec![false; specs.len()];
            inner.scripted = specs;
        }
        inj.active
            .store(true, std::sync::atomic::Ordering::Release);
        Arc::new(inj)
    }

    /// An injector that randomly delays chunks with probability `p`,
    /// deterministically for the seed. Delays are the only fault class
    /// safe to arm suite-wide: the stream protocol masks reorders.
    pub fn delay_matrix(seed: u64, p: f64) -> Arc<FaultInjector> {
        let inj = FaultInjector::default();
        {
            let mut inner = inj.inner.lock();
            inner.rng = Some(StdRng::seed_from_u64(seed));
            inner.delay_prob = p.clamp(0.0, 1.0);
        }
        inj.active
            .store(true, std::sync::atomic::Ordering::Release);
        Arc::new(inj)
    }

    /// The injector the environment asks for: a chunk-delay matrix seeded
    /// from `FAULT_SEED` when set (CI runs the full suite once under a
    /// fixed seed), inert otherwise.
    pub fn from_env() -> Arc<FaultInjector> {
        match std::env::var("FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            Some(seed) => FaultInjector::delay_matrix(seed, 0.05),
            None => FaultInjector::inert(),
        }
    }

    /// True when any fault could ever fire (false for [`inert`](Self::inert)).
    pub fn is_active(&self) -> bool {
        self.active.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Messages delivered on `pe` so far (its next message is ordinal
    /// `messages_seen + 1`). Lets a test script "k messages from now"
    /// without counting its own setup traffic: the ordinal clock only
    /// ticks while the injector is active, so arm it at boot.
    pub fn messages_seen(&self, pe: PeId) -> u64 {
        self.inner
            .lock()
            .msgs
            .get(&pe.index())
            .copied()
            .unwrap_or(0)
    }

    /// Stream chunks shipped from `pe` so far (its next chunk is ordinal
    /// `chunks_seen + 1`) — the chunk-clock twin of
    /// [`messages_seen`](Self::messages_seen), for scripting chunk fates
    /// relative to traffic a test has already generated.
    pub fn chunks_seen(&self, pe: PeId) -> u64 {
        self.inner
            .lock()
            .chunks
            .get(&pe.index())
            .copied()
            .unwrap_or(0)
    }

    /// Append scripted faults at runtime, arming the injector if it was
    /// inert. Ordinals stay absolute — combine with
    /// [`messages_seen`](Self::messages_seen) to fire relative to the
    /// present (e.g. kill a PE three messages into the *next* query).
    pub fn script(&self, specs: Vec<FaultSpec>) {
        {
            let mut inner = self.inner.lock();
            inner.used.extend(std::iter::repeat_n(false, specs.len()));
            inner.scripted.extend(specs);
        }
        self.active
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Mark a PE dead immediately (manual kill, used by tests and the
    /// scripted kill/crash specs internally).
    pub fn kill_pe(&self, pe: PeId) {
        self.active
            .store(true, std::sync::atomic::Ordering::Release);
        let mut inner = self.inner.lock();
        if inner.dead.insert(pe.index()) {
            inner.events.push(format!("kill {pe}"));
        }
    }

    /// True when `pe` has been killed.
    pub fn is_dead(&self, pe: PeId) -> bool {
        if !self.is_active() {
            return false;
        }
        self.inner.lock().dead.contains(&pe.index())
    }

    /// Called by an actor loop for every message delivered on `pe`.
    /// Returns `true` when the PE is dead (now or already) and the message
    /// must be swallowed without processing.
    pub fn on_message(&self, pe: PeId) -> bool {
        if !self.is_active() {
            return false;
        }
        let mut inner = self.inner.lock();
        let n = inner.msgs.entry(pe.index()).or_insert(0);
        *n += 1;
        let n = *n;
        for i in 0..inner.scripted.len() {
            if inner.used[i] {
                continue;
            }
            if let FaultSpec::KillPeAtMessage { pe: p, at } = inner.scripted[i] {
                if p == pe && n >= at {
                    inner.fire(i, format!("kill {pe} at message {n}"));
                    inner.dead.insert(pe.index());
                }
            }
        }
        inner.dead.contains(&pe.index())
    }

    /// Called by chunk shippers before each stream send from `pe`.
    pub fn chunk_fate(&self, pe: PeId) -> ChunkFate {
        if !self.is_active() {
            return ChunkFate::Deliver;
        }
        let mut inner = self.inner.lock();
        let n = inner.chunks.entry(pe.index()).or_insert(0);
        *n += 1;
        let n = *n;
        for i in 0..inner.scripted.len() {
            if inner.used[i] {
                continue;
            }
            let fate = match inner.scripted[i] {
                FaultSpec::DropChunk { pe: p, nth } if p == pe && nth == n => Some(ChunkFate::Drop),
                FaultSpec::DuplicateChunk { pe: p, nth } if p == pe && nth == n => {
                    Some(ChunkFate::Duplicate)
                }
                FaultSpec::DelayChunk { pe: p, nth } if p == pe && nth == n => {
                    Some(ChunkFate::Delay)
                }
                FaultSpec::CorruptChunk { pe: p, nth } if p == pe && nth == n => {
                    Some(ChunkFate::Corrupt)
                }
                _ => None,
            };
            if let Some(fate) = fate {
                inner.fire(i, format!("{fate:?} chunk {n} from {pe}"));
                return fate;
            }
        }
        if inner.delay_prob > 0.0 {
            let p = inner.delay_prob;
            if let Some(rng) = inner.rng.as_mut() {
                if rng.gen_bool(p) {
                    return ChunkFate::Delay;
                }
            }
        }
        ChunkFate::Deliver
    }

    /// Called by an OFM actor when it is about to handle a 2PC phase
    /// message. Returns `true` when the PE crashes instead (the message is
    /// swallowed and the PE is dead from here on).
    pub fn on_2pc(&self, pe: PeId, phase: TwoPcPhase) -> bool {
        if !self.is_active() {
            return false;
        }
        let mut inner = self.inner.lock();
        for i in 0..inner.scripted.len() {
            if inner.used[i] {
                continue;
            }
            if let FaultSpec::CrashDuring2pc { pe: p, phase: ph } = inner.scripted[i] {
                if p == pe && ph == phase {
                    inner.fire(i, format!("crash {pe} during 2PC {phase:?}"));
                    inner.dead.insert(pe.index());
                    return true;
                }
            }
        }
        inner.dead.contains(&pe.index())
    }

    /// Extra injected network latency for a packet from `src`, in ns
    /// (randomized delay mode only; scripted chunk faults act at the
    /// shipper, not the packet level).
    pub fn packet_delay_ns(&self, _src: PeId, base_ns: u64) -> u64 {
        if !self.is_active() {
            return 0;
        }
        let mut inner = self.inner.lock();
        if inner.delay_prob > 0.0 {
            let p = inner.delay_prob;
            if let Some(rng) = inner.rng.as_mut() {
                if rng.gen_bool(p) {
                    return base_ns;
                }
            }
        }
        0
    }

    /// The audit log of every fault that actually fired, in order.
    pub fn events(&self) -> Vec<String> {
        self.inner.lock().events.clone()
    }
}

/// The process-global injector, built once from the environment
/// ([`FaultInjector::from_env`]). Actors constructed without an explicit
/// injector use this one, so setting `FAULT_SEED` arms the whole process.
pub fn global() -> &'static Arc<FaultInjector> {
    static GLOBAL: OnceLock<Arc<FaultInjector>> = OnceLock::new();
    GLOBAL.get_or_init(FaultInjector::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::inert();
        assert!(!inj.is_active());
        for _ in 0..100 {
            assert!(!inj.on_message(PeId(1)));
            assert_eq!(inj.chunk_fate(PeId(1)), ChunkFate::Deliver);
            assert!(!inj.on_2pc(PeId(1), TwoPcPhase::Commit));
        }
        assert!(inj.events().is_empty());
    }

    #[test]
    fn kill_at_message_n_swallows_from_n_on() {
        let inj = FaultInjector::scripted(
            7,
            vec![FaultSpec::KillPeAtMessage {
                pe: PeId(2),
                at: 3,
            }],
        );
        assert!(!inj.on_message(PeId(2))); // 1
        assert!(!inj.on_message(PeId(2))); // 2
        assert!(!inj.on_message(PeId(1))); // other PE unaffected
        assert!(inj.on_message(PeId(2))); // 3: dead
        assert!(inj.on_message(PeId(2))); // stays dead
        assert!(inj.is_dead(PeId(2)));
        assert!(!inj.is_dead(PeId(1)));
        assert_eq!(inj.events().len(), 1);
    }

    #[test]
    fn scripted_chunk_fates_fire_once_at_their_ordinal() {
        let inj = FaultInjector::scripted(
            7,
            vec![
                FaultSpec::DropChunk { pe: PeId(0), nth: 2 },
                FaultSpec::DuplicateChunk { pe: PeId(0), nth: 3 },
                FaultSpec::DelayChunk { pe: PeId(1), nth: 1 },
                FaultSpec::CorruptChunk { pe: PeId(0), nth: 4 },
            ],
        );
        assert_eq!(inj.chunk_fate(PeId(0)), ChunkFate::Deliver);
        assert_eq!(inj.chunk_fate(PeId(0)), ChunkFate::Drop);
        assert_eq!(inj.chunk_fate(PeId(0)), ChunkFate::Duplicate);
        assert_eq!(inj.chunk_fate(PeId(0)), ChunkFate::Corrupt);
        assert_eq!(inj.chunk_fate(PeId(0)), ChunkFate::Deliver);
        assert_eq!(inj.chunk_fate(PeId(1)), ChunkFate::Delay);
        assert_eq!(inj.chunk_fate(PeId(1)), ChunkFate::Deliver);
        assert_eq!(inj.events().len(), 4);
    }

    #[test]
    fn crash_during_2pc_kills_the_pe() {
        let inj = FaultInjector::scripted(
            7,
            vec![FaultSpec::CrashDuring2pc {
                pe: PeId(3),
                phase: TwoPcPhase::Commit,
            }],
        );
        assert!(!inj.on_2pc(PeId(3), TwoPcPhase::Prepare));
        assert!(inj.on_2pc(PeId(3), TwoPcPhase::Commit));
        assert!(inj.is_dead(PeId(3)));
        // Dead PEs swallow subsequent messages too.
        assert!(inj.on_message(PeId(3)));
    }

    #[test]
    fn delay_matrix_is_deterministic_for_a_seed() {
        let a = FaultInjector::delay_matrix(42, 0.3);
        let b = FaultInjector::delay_matrix(42, 0.3);
        let fates_a: Vec<ChunkFate> = (0..200).map(|_| a.chunk_fate(PeId(0))).collect();
        let fates_b: Vec<ChunkFate> = (0..200).map(|_| b.chunk_fate(PeId(0))).collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&ChunkFate::Delay));
        assert!(fates_a.contains(&ChunkFate::Deliver));
        // Delays never drop or duplicate.
        assert!(fates_a
            .iter()
            .all(|f| matches!(f, ChunkFate::Delay | ChunkFate::Deliver)));
    }

    #[test]
    fn runtime_scripting_fires_relative_to_messages_seen() {
        let inj = FaultInjector::scripted(7, vec![]);
        for _ in 0..5 {
            assert!(!inj.on_message(PeId(1)));
        }
        assert_eq!(inj.messages_seen(PeId(1)), 5);
        inj.script(vec![FaultSpec::KillPeAtMessage {
            pe: PeId(1),
            at: inj.messages_seen(PeId(1)) + 2,
        }]);
        assert!(!inj.on_message(PeId(1))); // 6
        assert!(inj.on_message(PeId(1))); // 7: dead
        assert!(inj.is_dead(PeId(1)));
    }

    #[test]
    fn manual_kill_arms_an_inert_injector() {
        let inj = FaultInjector::inert();
        inj.kill_pe(PeId(5));
        assert!(inj.is_active());
        assert!(inj.is_dead(PeId(5)));
        assert!(inj.on_message(PeId(5)));
    }
}
