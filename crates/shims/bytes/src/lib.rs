//! Offline stand-in for `bytes`: `Bytes`/`BytesMut` plus the `Buf`/`BufMut`
//! method surface used by the stable-storage encoding.
//!
//! `Bytes` is a cheaply-cloneable view (`Arc<[u8]>` + range) and the `get_*`
//! accessors consume from the front, exactly like the real crate. Only the
//! little-endian accessors the WAL/checkpoint framing needs are provided.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        let data: Arc<[u8]> = src.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Wrap a static slice (copies here; the distinction is irrelevant for
    /// the shim).
    pub fn from_static(src: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view of the current view (indices relative to it).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the remaining view out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

/// Growable byte buffer.
#[derive(Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read-side accessor trait (front-consuming), mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Split off the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write-side accessor trait, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i64_le(-42);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(&*r.copy_to_bytes(2), b"xy");
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4]);
        let mid = b.slice(1..4);
        assert_eq!(&*mid, &[1, 2, 3]);
        assert_eq!(&*mid.slice(1..2), &[2]);
    }
}
