//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Same non-poisoning guard-returning API surface as the real crate for
//! the subset used in-tree: `Mutex`, `RwLock`, `Condvar`. Poisoned std
//! locks are recovered transparently (a panic while holding a lock does
//! not wedge the rest of the machine, matching parking_lot semantics).
//!
//! Because every lock in the workspace resolves here, the shim doubles
//! as the instrumentation point for prisma-checkx's lock-order deadlock
//! analysis: see [`lock_order`]. Off by default (one relaxed atomic
//! load per operation); armed by `CHECKX_LOCK_ORDER=1` or
//! [`lock_order::set_mode`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU32;
use std::sync::{self, TryLockError};
use std::time::Duration;

pub mod lock_order;

/// Mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    /// Lock-order site id, assigned on first recorded acquisition
    /// (0 = unassigned / recorder off).
    site: AtomicU32,
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can move
/// the underlying std guard out and back in around the blocking call.
pub struct MutexGuard<'a, T: ?Sized> {
    site: u32,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            site: AtomicU32::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = if lock_order::enabled() {
            let s = lock_order::site_id(&self.site);
            lock_order::on_acquire(s);
            s
        } else {
            0
        };
        MutexGuard {
            site,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        let site = if lock_order::enabled() {
            let s = lock_order::site_id(&self.site);
            lock_order::on_acquire_try(s);
            s
        } else {
            0
        };
        Some(MutexGuard {
            site,
            inner: Some(inner),
        })
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.site != 0 {
            lock_order::on_release(self.site);
        }
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        // The mutex is released for the duration of the wait: take it off
        // the lock-order held stack so nothing acquired by *other* code
        // on this thread (via callbacks) is misattributed, and record the
        // blocking reacquisition on wake.
        if guard.site != 0 {
            lock_order::on_release(guard.site);
        }
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        if guard.site != 0 {
            lock_order::on_acquire(guard.site);
        }
        guard.inner = Some(std_guard);
    }

    /// Block until notified or the timeout elapses. Returns true when the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        if guard.site != 0 {
            lock_order::on_release(guard.site);
        }
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        if guard.site != 0 {
            lock_order::on_acquire(guard.site);
        }
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    /// Lock-order site id, assigned on first recorded acquisition.
    site: AtomicU32,
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    site: u32,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    site: u32,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            site: AtomicU32::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Site id for the recorder (0 when the recorder is off). Read locks
    /// participate in ordering like write locks: a reader held while
    /// blocking on another lock deadlocks against a writer taking the
    /// two in the opposite order.
    fn record_site(&self) -> u32 {
        if lock_order::enabled() {
            let s = lock_order::site_id(&self.site);
            lock_order::on_acquire(s);
            s
        } else {
            0
        }
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = self.record_site();
        RwLockReadGuard {
            site,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = self.record_site();
        RwLockWriteGuard {
            site,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.site != 0 {
            lock_order::on_release(self.site);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.site != 0 {
            lock_order::on_release(self.site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
