//! Lock-order recorder — the data source for prisma-checkx's deadlock
//! analysis.
//!
//! Every `Mutex`/`RwLock` in the workspace resolves to this shim, which
//! puts the whole system's synchronization under one roof: when the
//! recorder is armed (`CHECKX_LOCK_ORDER=1` or [`set_mode`]), each lock
//! object is assigned a **site id** on its first acquisition and every
//! *blocking* acquisition made while other shim locks are held adds a
//! `held → acquired` edge to a global lock-order graph. An edge that
//! closes a cycle is a **potential deadlock**: two threads could be
//! running the two acquisition chains concurrently and block on each
//! other forever, even if this particular run got lucky. The report
//! carries the acquisition backtrace of every edge on the cycle — i.e.
//! both sides of an ABBA inversion — captured when the edge was first
//! observed.
//!
//! Design notes:
//!
//! * **Per-object sites.** Ids are per lock instance, not per source
//!   location, so a cycle is only reported when the *same two objects*
//!   are acquired in both orders — no false positives from unrelated
//!   locks that happen to share a constructor. (The cost: an inversion
//!   across two different instances of the same class is not
//!   generalized, as lockdep would; for this workspace's small, static
//!   lock population the precision trade is the right one.)
//! * **`try_lock` never blocks**, so a successful `try_lock` cannot be
//!   the blocking half of a deadlock: it participates as a *held* lock
//!   in later edges but its own acquisition adds none.
//! * **Condvar waits release the mutex**: the wait removes the lock from
//!   the held stack and the wake re-records the reacquisition, so "held
//!   across a wait" never fabricates edges — and a reacquisition while
//!   holding other locks is checked like any other acquisition.
//! * The recorder's own state uses `std::sync` primitives directly, so
//!   instrumentation never recurses into itself.
//!
//! When off (the default), the entire recorder is one relaxed atomic
//! load per lock operation.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Mutex as StdMutex;

/// What the recorder does with a cycle-closing acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Recorder off: every hook is a no-op (the default).
    Off,
    /// Record cycles into the report list without interrupting the
    /// program — what the seeded-inversion fixture uses to assert on
    /// the report contents.
    Record,
    /// Record the cycle, print the full report to stderr, and panic at
    /// the acquisition that closed it — what the `CHECKX_LOCK_ORDER=1`
    /// CI lane uses so a potential deadlock fails the build loudly.
    Panic,
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_RECORD: u8 = 2;
const MODE_PANIC: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);
static NEXT_SITE: AtomicU32 = AtomicU32::new(1);

/// One observed `held → acquired` ordering, with the backtrace of the
/// acquisition that created it.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Site id of the lock that was already held.
    pub held: u32,
    /// Site id of the lock being acquired.
    pub acquired: u32,
    /// Backtrace of the acquisition of `acquired` while `held` was
    /// held, captured when this edge was first observed.
    pub backtrace: String,
}

/// A cycle in the lock-order graph: a potential deadlock. `edges` walks
/// the cycle — for the classic two-lock inversion it holds both
/// acquisition backtraces (A held while taking B, B held while taking
/// A).
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// The site ids on the cycle, in order.
    pub sites: Vec<u32>,
    /// The edges closing the cycle, each with its acquisition backtrace.
    pub edges: Vec<Edge>,
}

impl CycleReport {
    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "checkx: potential deadlock — lock-order cycle through sites {:?}\n",
            self.sites
        );
        for e in &self.edges {
            out.push_str(&format!(
                "  site {} held while acquiring site {}; acquisition backtrace:\n{}\n",
                e.held, e.acquired, e.backtrace
            ));
        }
        out
    }
}

#[derive(Default)]
struct Graph {
    /// `held → acquired` edges, first-observation backtrace each.
    edges: HashMap<(u32, u32), String>,
    /// Adjacency: site → sites acquired while it was held.
    succ: HashMap<u32, Vec<u32>>,
    cycles: Vec<CycleReport>,
}

impl Graph {
    /// A path `from →* to` over recorded edges.
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![vec![from]];
        let mut seen = std::collections::HashSet::new();
        seen.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths are non-empty");
            if last == to {
                return Some(path);
            }
            for &next in self.succ.get(&last).into_iter().flatten() {
                if seen.insert(next) || next == to {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push(p);
                }
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: std::sync::OnceLock<StdMutex<Graph>> = std::sync::OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

thread_local! {
    /// Site ids of shim locks this thread currently holds, in
    /// acquisition order (duplicates allowed: reader locks re-entered
    /// through distinct guards each push).
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// The active mode, reading `CHECKX_LOCK_ORDER` on first use
/// (`1`/`panic` → [`Mode::Panic`], `record` → [`Mode::Record`], anything
/// else → off).
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => Mode::Off,
        MODE_RECORD => Mode::Record,
        MODE_PANIC => Mode::Panic,
        _ => {
            let m = match std::env::var("CHECKX_LOCK_ORDER").as_deref() {
                Ok("1") | Ok("panic") => Mode::Panic,
                Ok("record") => Mode::Record,
                _ => Mode::Off,
            };
            set_mode(m);
            m
        }
    }
}

/// Arm or disarm the recorder programmatically (tests and fixtures; the
/// environment variable only seeds the initial mode).
pub fn set_mode(m: Mode) {
    let v = match m {
        Mode::Off => MODE_OFF,
        Mode::Record => MODE_RECORD,
        Mode::Panic => MODE_PANIC,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// True when acquisitions are currently being recorded.
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// Assign (once) and return the site id for a lock object's id slot.
pub(crate) fn site_id(slot: &AtomicU32) -> u32 {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_SITE.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(existing) => existing,
    }
}

/// Record a blocking acquisition of `site`: add `held → site` edges for
/// every lock this thread holds, detect cycles, then push onto the held
/// stack. Called *before* the underlying lock call so the edge exists
/// even if the acquisition then blocks forever.
pub(crate) fn on_acquire(site: u32) {
    let m = mode();
    if m == Mode::Off {
        return;
    }
    HELD.with(|held| {
        let held_now: Vec<u32> = held.borrow().clone();
        for &h in &held_now {
            if h != site {
                record_edge(h, site, m);
            }
        }
        held.borrow_mut().push(site);
    });
}

/// Record a successful `try_lock`: the lock is now held (it gates later
/// edges) but a non-blocking acquisition cannot itself deadlock, so no
/// edges are added for it.
pub(crate) fn on_acquire_try(site: u32) {
    if mode() == Mode::Off {
        return;
    }
    HELD.with(|held| held.borrow_mut().push(site));
}

/// Record a release (guard drop, or a condvar wait parking the mutex).
pub(crate) fn on_release(site: u32) {
    if mode() == Mode::Off {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == site) {
            held.remove(pos);
        }
    });
}

fn record_edge(held: u32, acquired: u32, m: Mode) {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    if g.edges.contains_key(&(held, acquired)) {
        return;
    }
    // New ordering observed: does the reverse direction already exist as
    // a path? Then `held → acquired` closes a cycle.
    let cycle = g.path(acquired, held).map(|mut sites| {
        sites.push(acquired); // close the loop for the report
        let mut edges = Vec::new();
        for w in sites.windows(2) {
            if let Some(bt) = g.edges.get(&(w[0], w[1])) {
                edges.push(Edge {
                    held: w[0],
                    acquired: w[1],
                    backtrace: bt.clone(),
                });
            }
        }
        edges.push(Edge {
            held,
            acquired,
            backtrace: format!("{}", Backtrace::force_capture()),
        });
        CycleReport { sites, edges }
    });
    let bt = format!("{}", Backtrace::force_capture());
    g.edges.insert((held, acquired), bt);
    g.succ.entry(held).or_default().push(acquired);
    if let Some(report) = cycle {
        let rendered = report.render();
        g.cycles.push(report);
        drop(g);
        eprintln!("{rendered}");
        if m == Mode::Panic {
            panic!("{rendered}");
        }
    }
}

/// Every cycle observed so far (clones; the graph keeps accumulating).
pub fn cycle_reports() -> Vec<CycleReport> {
    graph()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .cycles
        .clone()
}

/// Number of distinct `held → acquired` orderings observed.
pub fn edge_count() -> usize {
    graph()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .edges
        .len()
}

/// Drop all recorded edges and cycle reports (test isolation within one
/// process; site ids are never reused).
pub fn reset() {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    *g = Graph::default();
}
