//! Offline stand-in for `crossbeam`: an MPMC unbounded channel plus the
//! work-stealing deque family.
//!
//! Two modules are used in-tree:
//!
//! * [`channel`] — the POOL-X runtime's per-PE mailboxes and external
//!   client mailboxes. Senders and receivers are clonable and `Sync`,
//!   matching the real crate; disconnection is tracked by endpoint
//!   refcounts.
//! * [`deque`] — the morsel worker pool's work-stealing queues, matching
//!   the `crossbeam-deque` API subset (`Worker`/`Stealer`/`Injector` and
//!   the `Steal` result enum) so a later swap to the real crate is a
//!   drop-in: owner pops LIFO, stealers take FIFO from the other end.

pub mod hooks {
    //! Yield-point probes for prisma-checkx's interleaving tooling.
    //!
    //! Each instrumented operation in the [`crate::deque`] module (and in
    //! `poolx::workers`, which builds on it) announces itself through
    //! [`probe`] just before it runs. Unarmed — the default — a probe is
    //! one relaxed atomic load. Armed via [`set_hook`], the registered
    //! callback observes the exact sequence of queue operations a thread
    //! performs: checkx uses this to assert schedule coverage and to
    //! perturb thread interleavings deterministically (a seeded hook
    //! yielding at chosen points replays the same schedule pressure
    //! every run).

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    type Hook = Arc<dyn Fn(&'static str) + Send + Sync>;

    static ARMED: AtomicBool = AtomicBool::new(false);

    fn slot() -> &'static Mutex<Option<Hook>> {
        static SLOT: OnceLock<Mutex<Option<Hook>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    /// Announce an instrumented operation. `point` names it, e.g.
    /// `"deque.stealer.steal"`. No-op unless a hook is armed.
    pub fn probe(point: &'static str) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        // Clone the hook out so it runs without the registry lock held:
        // probes fire concurrently from every worker thread.
        let hook = slot().lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(hook) = hook {
            hook(point);
        }
    }

    /// Arm `hook` to run at every probe point (replacing any previous
    /// hook). The hook must be reentrancy-safe: it runs on whichever
    /// thread hits the probe.
    pub fn set_hook(hook: impl Fn(&'static str) + Send + Sync + 'static) {
        *slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(hook));
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarm probes (back to one atomic load each).
    pub fn clear_hook() {
        ARMED.store(false, Ordering::Relaxed);
        *slot().lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending on a channel with no receivers left.
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still connected.
        Timeout,
        /// All senders disconnected and the queue drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let none_left = st.senders == 0;
            drop(st);
            if none_left {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = st.queue.pop_front() {
                Ok(msg)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(41).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(41));
            t.join().unwrap();
        }
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API shape.
    //!
    //! The real crate is lock-free (Chase-Lev); this shim trades that for
    //! a mutex per queue, which preserves every observable ordering
    //! property the pool relies on — the owner works **LIFO** off the hot
    //! end (cache-warm morsels first), stealers take **FIFO** from the
    //! cold end (the largest remaining chunk of sequential work), and the
    //! [`Injector`] is a FIFO shared by everyone.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, matching `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observably empty.
        Empty,
        /// One task was taken.
        Success(T),
        /// The attempt lost a race and may be retried (the mutex shim
        /// never produces this, but callers written against the real
        /// crate must handle it, so the variant exists).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True when the queue was observably empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The owner end of a work-stealing deque. Only the owning worker
    /// pushes and pops (LIFO); [`Stealer`]s clone freely and take from
    /// the opposite end.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops in LIFO order (the only flavour the
        /// pool uses; `new_fifo` exists in the real crate).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's (hot) end.
        pub fn push(&self, task: T) {
            crate::hooks::probe("deque.worker.push");
            lock(&self.queue).push_back(task);
        }

        /// Pop from the owner's end — the most recently pushed task.
        pub fn pop(&self) -> Option<T> {
            crate::hooks::probe("deque.worker.pop");
            lock(&self.queue).pop_back()
        }

        /// A stealer handle for other workers.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Queued task count.
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    /// A thief's handle to another worker's deque: takes the **oldest**
    /// task (FIFO end), so a thief steals the start of a sequential run
    /// while the owner keeps working its cache-warm tail.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Try to take one task from the cold end.
        pub fn steal(&self) -> Steal<T> {
            crate::hooks::probe("deque.stealer.steal");
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when the deque is observably empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A FIFO queue every worker can push to and steal from — the entry
    /// point for tasks submitted from outside the pool.
    pub struct Injector<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueue a task at the tail.
        pub fn push(&self, task: T) {
            crate::hooks::probe("deque.injector.push");
            lock(&self.queue).push_back(task);
        }

        /// Take the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            crate::hooks::probe("deque.injector.steal");
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Queued task count.
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    impl<T> Clone for Injector<T> {
        fn clone(&self) -> Self {
            Injector {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn owner_pops_lifo() {
            let w = Worker::new_lifo();
            for i in 0..4 {
                w.push(i);
            }
            assert_eq!(w.len(), 4);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            w.push(9);
            assert_eq!(w.pop(), Some(9));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(0));
            assert_eq!(w.pop(), None);
            assert!(w.is_empty());
        }

        #[test]
        fn stealer_takes_fifo_from_the_cold_end() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            for i in 0..4 {
                w.push(i);
            }
            // Thief gets the oldest task while the owner keeps the
            // newest — opposite ends, never the same task.
            assert_eq!(s.steal(), Steal::Success(0));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert!(s.steal().is_empty());
        }

        #[test]
        fn racing_stealers_take_each_task_exactly_once() {
            let w = Worker::new_lifo();
            const N: usize = 10_000;
            for i in 0..N {
                w.push(i);
            }
            let taken = Arc::new(AtomicUsize::new(0));
            let sum = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    let taken = Arc::clone(&taken);
                    let sum = Arc::clone(&sum);
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                taken.fetch_add(1, Ordering::Relaxed);
                                sum.fetch_add(v, Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            // Every task stolen exactly once: count and checksum match.
            assert_eq!(taken.load(Ordering::Relaxed), N);
            assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
            assert!(w.is_empty());
        }

        #[test]
        fn owner_and_stealers_race_without_loss_or_duplication() {
            let w = Worker::new_lifo();
            const N: usize = 10_000;
            for i in 0..N {
                w.push(i);
            }
            let stolen = Arc::new(AtomicUsize::new(0));
            let thieves: Vec<_> = (0..2)
                .map(|_| {
                    let s = w.stealer();
                    let stolen = Arc::clone(&stolen);
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(_) => {
                                stolen.fetch_add(1, Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    })
                })
                .collect();
            let mut popped = 0usize;
            while w.pop().is_some() {
                popped += 1;
            }
            for t in thieves {
                t.join().unwrap();
            }
            assert_eq!(popped + stolen.load(Ordering::Relaxed), N);
        }

        #[test]
        fn injector_is_fair_fifo_across_consumers() {
            let inj = Injector::new();
            for i in 0..6 {
                inj.push(i);
            }
            // Alternating consumers observe global FIFO order: nobody
            // can starve the queue of its oldest entry.
            let a = inj.clone();
            let b = inj.clone();
            let mut seen = Vec::new();
            for round in 0..3 {
                let side = if round % 2 == 0 { &a } else { &b };
                seen.push(side.steal().success().unwrap());
                seen.push(inj.steal().success().unwrap());
            }
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
            assert!(inj.steal().is_empty());
            assert_eq!(inj.len(), 0);
        }
    }
}
