//! Offline stand-in for `crossbeam`: an MPMC unbounded channel.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used
//! in-tree (the POOL-X runtime's per-PE mailboxes and external client
//! mailboxes). Senders and receivers are clonable and `Sync`, matching
//! the real crate; disconnection is tracked by endpoint refcounts.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending on a channel with no receivers left.
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still connected.
        Timeout,
        /// All senders disconnected and the queue drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let none_left = st.senders == 0;
            drop(st);
            if none_left {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = st.queue.pop_front() {
                Ok(msg)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(41).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(41));
            t.join().unwrap();
        }
    }
}
