//! Offline stand-in for `rand`: a seedable xoshiro256** generator behind
//! the `Rng`/`SeedableRng` trait names, covering the `gen_range`/`gen_bool`
//! surface the workload and traffic generators use.
//!
//! Deterministic for a given seed (the repo's generators all seed
//! explicitly), with unbiased integer ranges via rejection sampling.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` arguments.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a double in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` (span ≤ 2^64 here; rejection
/// sampling over 64-bit draws).
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    let span64 = span as u64; // spans in-tree fit comfortably in u64
    if span64.is_power_of_two() {
        return (rng.next_u64() & (span64 - 1)) as u128;
    }
    let zone = u64::MAX - (u64::MAX % span64) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, good equidistribution.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0i64..=5);
            assert!((0..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
