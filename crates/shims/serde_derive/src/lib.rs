//! No-op `Serialize`/`Deserialize` derives for the offline build.
//!
//! The workspace is built in environments without access to crates.io, so
//! the real `serde_derive` is replaced by this stub. Nothing in the tree
//! serializes through serde (the stable layer has its own explicit binary
//! encoding), so the derives only need to parse — they emit no impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
