//! Offline stand-in for `criterion`: wall-clock micro-benchmark harness.
//!
//! Provides `Criterion`, `benchmark_group`, `bench_function`, `Bencher`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark
//! runs a short warm-up followed by `sample_size` timed samples and prints
//! min/median/mean per iteration — enough to compare configurations, with
//! no statistics machinery or report files.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Set the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (formatting parity with criterion).
    pub fn finish(self) {}
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`: warm-up once, then `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            eprintln!("bench {label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        eprintln!(
            "bench {label}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4); // warm-up + 3 samples
    }
}
