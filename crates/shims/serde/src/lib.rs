//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive-macro
//! namespaces, as in the real crate) so `#[derive(Serialize, Deserialize)]`
//! compiles without the registry. No serialization machinery is included;
//! the stable layer uses its own explicit binary encoding.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods are used in-tree).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods are used
/// in-tree).
pub trait Deserialize<'de> {}
