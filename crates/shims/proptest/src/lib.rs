//! Offline stand-in for `proptest`: randomized property testing without
//! shrinking.
//!
//! Implements the subset of the proptest API the repo's property tests
//! use — `Strategy` with `prop_map`/`prop_recursive`, `prop_oneof!`,
//! `Just`, integer-range and regex-ish string strategies, tuple and
//! collection composition, and the `proptest!`/`prop_assert*!` macros.
//! Failing cases are reported with their case number and seed; there is no
//! shrinking, so keep generated inputs small at the source.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below(self.hi_inclusive - self.lo + 1) + self.lo
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of `element` values (size is a target,
    /// not a guarantee — duplicates collapse).
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` strategy with target sizes drawn from `size`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias used for collection strategies.
    pub mod prop {
        pub use crate::collection;
    }
}

/// One strategy drawn uniformly from several alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declare property tests: each `#[test] fn name(pat in strategy, ..)` runs
/// the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::from_seed(seed ^ (case as u64));
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{} (seed {seed:#x}): {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}
