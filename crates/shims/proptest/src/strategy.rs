//! Value-generation strategies and combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// level below and returns the strategy for one level up; levels are
    /// mixed so shallow values keep appearing. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(level.clone()).boxed();
            level = Union::new(vec![level, deeper]).boxed();
        }
        level
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from boxed alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.bits() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.bits()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.bits() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.bits() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises NaN, infinities and subnormals,
        // which is exactly what total-order properties need.
        f64::from_bits(rng.bits())
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= usize::MAX as u128);
                (self.start as i128 + rng.below(span as usize) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

/// Simple pattern strategies for `&str`: supports `[lo-hi]{min,max}`
/// character-class repetitions (e.g. `"[a-z]{0,12}"`), which is the only
/// regex shape used in-tree. Anything else panics loudly.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = rng.below(max - min + 1) + min;
        (0..len)
            .map(|_| {
                let span = (hi as u32 - lo as u32 + 1) as usize;
                char::from_u32(lo as u32 + rng.below(span) as u32).expect("ascii range")
            })
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }
    Some((lo, hi, min, max))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0i64..10).generate(&mut r);
            assert!((0..10).contains(&v));
            let (a, b) = ((0u8..3), (5i32..6)).generate(&mut r);
            assert!(a < 3);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn string_pattern() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..5).contains(v), "leaf out of range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..5).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut r)) <= 3);
        }
    }
}
