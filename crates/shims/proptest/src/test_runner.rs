//! Test-runner plumbing: configuration, RNG, and case-failure reporting.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test seed derived from the test name (FNV-1a), so
/// every test explores a distinct but reproducible sequence.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        if n.is_power_of_two() {
            return (self.bits() & (n - 1)) as usize;
        }
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = self.bits();
            if v <= zone {
                return (v % n) as usize;
            }
        }
    }
}
