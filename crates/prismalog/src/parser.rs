//! PRISMAlog parser (Prolog-like surface syntax).
//!
//! ```text
//! parent(john, mary).
//! ancestor(X, Y) :- parent(X, Y).
//! ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//! adult(X) :- person(X, Age), Age >= 18.
//! ?- ancestor(john, Who).
//! ```
//!
//! Lower-case initial = constant atom (stored as a string value);
//! upper-case or `_` initial = variable; `%` starts a line comment.
//! Comparison built-ins: `<  =<  <=  >  >=  =  \=  !=`.

use prisma_storage::expr::CmpOp;
use prisma_types::{PrismaError, Result, Value};

use crate::ast::{Atom, Literal, Program, Rule, Term};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),   // lowercase-initial identifier
    Var(String),    // uppercase/underscore-initial identifier
    Int(i64),
    Double(f64),
    Str(String),
    Punct(char),    // ( ) , .
    Arrow,          // :-
    Query,          // ?-
    Op(CmpOp),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' => {
                toks.push(Tok::Punct(c));
                i += 1;
            }
            '.' => {
                // Disambiguate end-of-clause '.' from a float like `1.5`
                // (handled in the number branch, so '.' here is always
                // end-of-clause).
                toks.push(Tok::Punct('.'));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(PrismaError::Parse("stray ':'".into()));
                }
            }
            '?' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push(Tok::Query);
                    i += 2;
                } else {
                    return Err(PrismaError::Parse("stray '?'".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else {
                    toks.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    toks.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    toks.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else {
                    toks.push(Tok::Op(CmpOp::Eq));
                    i += 1;
                }
            }
            '\\' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    return Err(PrismaError::Parse("stray '\\'".into()));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    return Err(PrismaError::Parse("stray '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(PrismaError::Parse("unterminated quoted atom".into()));
                    }
                    if bytes[i] == b'\'' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                toks.push(Tok::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !bytes.get(i).is_some_and(u8::is_ascii_digit) {
                        return Err(PrismaError::Parse("stray '-'".into()));
                    }
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    toks.push(Tok::Double(text.parse().map_err(|_| {
                        PrismaError::Parse(format!("bad float {text}"))
                    })?));
                } else {
                    toks.push(Tok::Int(text.parse().map_err(|_| {
                        PrismaError::Parse(format!("bad int {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                if c.is_ascii_uppercase() || c == '_' {
                    toks.push(Tok::Var(word.to_owned()));
                } else {
                    toks.push(Tok::Name(word.to_owned()));
                }
            }
            other => {
                return Err(PrismaError::Parse(format!(
                    "unexpected character '{other}' in PRISMAlog source"
                )))
            }
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(PrismaError::Parse(format!(
                "expected {what}, found {:?}",
                self.peek()
            )))
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Name(n)) => Ok(Term::Const(Value::Str(n))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::Str(s))),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Double(d)) => Ok(Term::Const(Value::Double(d))),
            other => Err(PrismaError::Parse(format!("expected term, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let pred = match self.next() {
            Some(Tok::Name(n)) => n,
            other => {
                return Err(PrismaError::Parse(format!(
                    "expected predicate name, found {other:?}"
                )))
            }
        };
        self.expect(&Tok::Punct('('), "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::Punct(')')) {
            loop {
                args.push(self.term()?);
                if self.peek() == Some(&Tok::Punct(',')) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Punct(')'), "')'")?;
        Ok(Atom { pred, args })
    }

    fn literal(&mut self) -> Result<Literal> {
        // Comparison literal? It starts with a term followed by an op.
        let is_cmp = matches!(
            (self.peek(), self.toks.get(self.pos + 1)),
            (
                Some(Tok::Var(_) | Tok::Int(_) | Tok::Double(_) | Tok::Str(_)),
                Some(Tok::Op(_))
            )
        ) || matches!(
            (self.peek(), self.toks.get(self.pos + 1)),
            (Some(Tok::Name(_)), Some(Tok::Op(_)))
        );
        if is_cmp {
            let l = self.term()?;
            let Some(Tok::Op(op)) = self.next() else {
                return Err(PrismaError::Parse("expected comparison operator".into()));
            };
            let r = self.term()?;
            return Ok(Literal::Cmp(op, l, r));
        }
        Ok(Literal::Atom(self.atom()?))
    }

    fn clause(&mut self) -> Result<Rule> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::Arrow) {
            self.pos += 1;
            loop {
                body.push(self.literal()?);
                if self.peek() == Some(&Tok::Punct(',')) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Punct('.'), "'.' at end of clause")?;
        Ok(Rule { head, body })
    }
}

/// Parse a PRISMAlog program (facts and rules; no queries).
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        if p.peek() == Some(&Tok::Query) {
            return Err(PrismaError::Parse(
                "queries (?-) belong in parse_query, not in the program".into(),
            ));
        }
        rules.push(p.clause()?);
    }
    Ok(Program { rules })
}

/// Parse a query: `?- pred(args).` (the `?-` and `.` are optional).
pub fn parse_query(src: &str) -> Result<Atom> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    if p.peek() == Some(&Tok::Query) {
        p.pos += 1;
    }
    let atom = p.atom()?;
    if p.peek() == Some(&Tok::Punct('.')) {
        p.pos += 1;
    }
    if p.peek().is_some() {
        return Err(PrismaError::Parse("trailing input after query".into()));
    }
    Ok(atom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ancestor_program() {
        let p = parse_program(
            "% the classic
             parent(john, mary).
             parent(mary, sue).
             ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[0].is_fact());
        assert!(!p.rules[2].is_fact());
        assert_eq!(p.defined_predicates(), vec!["ancestor", "parent"]);
        assert_eq!(p.rules_for("ancestor").len(), 2);
        // Round-trip through Display re-parses.
        let again = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn comparisons_and_mixed_constants() {
        let p = parse_program(
            "tall(X) :- person(X, H), H >= 1.80.
             not_bob(X) :- person(X, _H), X \\= bob.
             cheap(X) :- price(X, P), P =< 10, P < 100.",
        )
        .unwrap();
        let r = &p.rules[0];
        assert!(matches!(r.body[1], Literal::Cmp(CmpOp::Ge, _, _)));
        let r = &p.rules[2];
        assert!(matches!(r.body[1], Literal::Cmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn query_forms() {
        let q = parse_query("?- ancestor(john, X).").unwrap();
        assert_eq!(q.pred, "ancestor");
        assert_eq!(q.args.len(), 2);
        let q2 = parse_query("ancestor(john, X)").unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn quoted_atoms_and_negatives() {
        let p = parse_program("fact('Hello World', -5).").unwrap();
        let Rule { head, .. } = &p.rules[0];
        assert_eq!(head.args[0], Term::Const(Value::Str("Hello World".into())));
        assert_eq!(head.args[1], Term::Const(Value::Int(-5)));
    }

    #[test]
    fn zero_arity_predicates() {
        let p = parse_program("go() :- ready().").unwrap();
        assert_eq!(p.rules[0].head.args.len(), 0);
    }

    #[test]
    fn errors() {
        assert!(parse_program("broken(").is_err());
        assert!(parse_program("missing_dot(x)").is_err());
        assert!(parse_program("?- in_program(x).").is_err());
        assert!(parse_query("two(x). extra(y).").is_err());
        assert!(parse_program("p(X) :- q(X) r(X).").is_err());
    }
}
