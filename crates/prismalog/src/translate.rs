//! Translating PRISMAlog to the extended relational algebra.
//!
//! Paper §2.3: "The semantics of PRISMAlog is defined in terms of
//! extensions of the relational algebra. Facts correspond to tuples in
//! relations in the database. Rules are view definitions including
//! recursion." — so each rule becomes a select-project-join expression,
//! each predicate a union of its rules, and a linearly self-recursive
//! predicate a [`LogicalPlan::Fixpoint`] evaluated semi-naively.
//!
//! Mutual recursion and non-linear rules are supported by the direct
//! evaluator ([`crate::seminaive`]) but deliberately not by the algebra
//! translator (the distributed executor runs algebra; the paper's own
//! recursive showcase — transitive closure — is linear).

use std::collections::HashMap;

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::ScalarExpr;
use prisma_types::{Column, PrismaError, Result, Schema, Tuple};

use crate::analyze::{check_program, sccs};
use crate::ast::{Atom, Literal, Program, Rule, Term};

/// Source of EDB relation schemas (the GDH data dictionary in the full
/// machine).
pub trait SchemaSource {
    /// Schema of the EDB relation `name`.
    fn edb_schema(&self, name: &str) -> Result<Schema>;
}

impl SchemaSource for HashMap<String, Schema> {
    fn edb_schema(&self, name: &str) -> Result<Schema> {
        self.get(name)
            .cloned()
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }
}

/// Compile `?- query.` against `program` into a logical plan over the EDB
/// relations.
pub fn compile_query(
    program: &Program,
    query: &Atom,
    source: &dyn SchemaSource,
) -> Result<LogicalPlan> {
    check_program(program)?;
    let mut ctx = Ctx {
        program,
        source,
        sccs: sccs(program),
        cache: HashMap::new(),
        in_progress: HashMap::new(),
    };
    let pred_plan = ctx.predicate_plan(&query.pred)?;
    let schema = pred_plan.output_schema()?;
    if schema.arity() != query.args.len() {
        return Err(PrismaError::ArityMismatch {
            expected: schema.arity(),
            got: query.args.len(),
        });
    }
    // Constant arguments select; repeated variables equate; the output is
    // the distinct query variables in first-occurrence order.
    let mut selections = Vec::new();
    let mut var_first: Vec<(String, usize)> = Vec::new();
    for (i, arg) in query.args.iter().enumerate() {
        match arg {
            Term::Const(v) => selections.push(ScalarExpr::eq(
                ScalarExpr::Col(i),
                ScalarExpr::Lit(v.clone()),
            )),
            Term::Var(x) => {
                if let Some((_, j)) = var_first.iter().find(|(v, _)| v == x) {
                    selections.push(ScalarExpr::eq(ScalarExpr::Col(*j), ScalarExpr::Col(i)));
                } else {
                    var_first.push((x.clone(), i));
                }
            }
        }
    }
    let mut plan = pred_plan;
    if !selections.is_empty() {
        plan = plan.select(ScalarExpr::conjunction(selections));
    }
    let out_cols: Vec<Column> = var_first
        .iter()
        .map(|(v, i)| {
            let src = schema.column(*i).expect("arity checked");
            Column::nullable(v.clone(), src.dtype)
        })
        .collect();
    let plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: var_first.iter().map(|(_, i)| ScalarExpr::Col(*i)).collect(),
        schema: Schema::new(out_cols),
    };
    let plan = LogicalPlan::Distinct {
        input: Box::new(plan),
    };
    plan.validate()?;
    Ok(plan)
}

struct Ctx<'a> {
    program: &'a Program,
    source: &'a dyn SchemaSource,
    sccs: Vec<Vec<String>>,
    cache: HashMap<String, LogicalPlan>,
    /// Recursive predicates currently being compiled: name → schema. Body
    /// occurrences become delta scans.
    in_progress: HashMap<String, Schema>,
}

impl Ctx<'_> {
    fn is_defined(&self, pred: &str) -> bool {
        !self.program.rules_for(pred).is_empty()
    }

    fn scc_of(&self, pred: &str) -> Option<&[String]> {
        self.sccs
            .iter()
            .find(|c| c.iter().any(|p| p == pred))
            .map(Vec::as_slice)
    }

    fn predicate_plan(&mut self, pred: &str) -> Result<LogicalPlan> {
        if let Some(p) = self.cache.get(pred) {
            return Ok(p.clone());
        }
        if let Some(schema) = self.in_progress.get(pred) {
            // Recursive occurrence inside its own fixpoint step: scan the
            // delta (semi-naive; linearity is enforced by rule_plan's
            // caller below).
            return Ok(LogicalPlan::scan(format!("Δ{pred}"), schema.clone()));
        }
        if !self.is_defined(pred) {
            // EDB relation.
            let schema = self.source.edb_schema(pred)?;
            return Ok(LogicalPlan::scan(pred, schema));
        }
        let scc = self
            .scc_of(pred)
            .map(<[String]>::to_vec)
            .unwrap_or_default();
        if scc.len() > 1 {
            return Err(PrismaError::UnsafeRule(format!(
                "predicate {pred} is mutually recursive (SCC {scc:?}); the algebra \
                 translator supports only linear self-recursion — use the semi-naive \
                 evaluator for this program"
            )));
        }
        let rules = self.program.rules_for(pred);
        let is_recursive = rules
            .iter()
            .any(|r| r.body_atoms().any(|a| a.pred == pred));
        let (facts, base_rules, rec_rules) = split_rules(&rules, pred);

        if !is_recursive {
            let mut plan = self.union_of(pred, &facts, &base_rules, None)?;
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
            self.cache.insert(pred.to_owned(), plan.clone());
            return Ok(plan);
        }

        // Linear self-recursion → Fixpoint.
        for r in &rec_rules {
            let occurrences = r.body_atoms().filter(|a| a.pred == pred).count();
            if occurrences != 1 {
                return Err(PrismaError::UnsafeRule(format!(
                    "rule `{r}` has {occurrences} recursive occurrences; only linear \
                     recursion translates to algebra — use the semi-naive evaluator"
                )));
            }
        }
        if facts.is_empty() && base_rules.is_empty() {
            return Err(PrismaError::UnsafeRule(format!(
                "recursive predicate {pred} has no non-recursive rule"
            )));
        }
        let base = self.union_of(pred, &facts, &base_rules, None)?;
        let base_schema = base.output_schema()?;
        self.in_progress.insert(pred.to_owned(), base_schema);
        let step_result = (|| {
            let mut step: Option<LogicalPlan> = None;
            for r in &rec_rules {
                let rp = self.rule_plan(r)?;
                step = Some(match step {
                    None => rp,
                    Some(s) => LogicalPlan::Union {
                        left: Box::new(s),
                        right: Box::new(rp),
                        all: false,
                    },
                });
            }
            step.ok_or_else(|| PrismaError::UnsafeRule(format!("{pred}: no recursive rules")))
        })();
        self.in_progress.remove(pred);
        let step = step_result?;
        let plan = LogicalPlan::Fixpoint {
            name: pred.to_owned(),
            base: Box::new(LogicalPlan::Distinct {
                input: Box::new(base),
            }),
            step: Box::new(step),
        };
        self.cache.insert(pred.to_owned(), plan.clone());
        Ok(plan)
    }

    /// Union of fact tuples and rule plans for a predicate.
    fn union_of(
        &mut self,
        pred: &str,
        facts: &[&Rule],
        rules: &[&Rule],
        schema_hint: Option<&Schema>,
    ) -> Result<LogicalPlan> {
        let mut plan: Option<LogicalPlan> = None;
        for r in rules {
            let rp = self.rule_plan(r)?;
            plan = Some(match plan {
                None => rp,
                Some(p) => LogicalPlan::Union {
                    left: Box::new(p),
                    right: Box::new(rp),
                    all: false,
                },
            });
        }
        if !facts.is_empty() {
            let rows: Vec<Tuple> = facts
                .iter()
                .map(|f| {
                    Tuple::new(
                        f.head
                            .args
                            .iter()
                            .map(|t| match t {
                                Term::Const(v) => v.clone(),
                                Term::Var(_) => unreachable!("safety checked"),
                            })
                            .collect(),
                    )
                })
                .collect();
            let schema = match (&plan, schema_hint) {
                (Some(p), _) => p.output_schema()?,
                (None, Some(s)) => s.clone(),
                (None, None) => fact_schema(pred, &rows),
            };
            let values = LogicalPlan::Values { schema, rows };
            plan = Some(match plan {
                None => values,
                Some(p) => LogicalPlan::Union {
                    left: Box::new(p),
                    right: Box::new(values),
                    all: false,
                },
            });
        }
        plan.ok_or_else(|| {
            PrismaError::UnsafeRule(format!("predicate {pred} has no rules or facts"))
        })
    }

    /// Conjunctive-query translation of one rule body + head projection.
    fn rule_plan(&mut self, rule: &Rule) -> Result<LogicalPlan> {
        let mut plan: Option<LogicalPlan> = None;
        // var name → column ordinal in the current join result.
        let mut var_cols: HashMap<String, usize> = HashMap::new();
        let mut width = 0usize;

        for lit in &rule.body {
            let Literal::Atom(atom) = lit else { continue };
            let mut aplan = self.predicate_plan(&atom.pred)?;
            let aschema = aplan.output_schema()?;
            if aschema.arity() != atom.args.len() {
                return Err(PrismaError::ArityMismatch {
                    expected: aschema.arity(),
                    got: atom.args.len(),
                });
            }
            // Per-atom constant and repeated-variable selections.
            let mut sels = Vec::new();
            let mut local: HashMap<&str, usize> = HashMap::new();
            for (i, arg) in atom.args.iter().enumerate() {
                match arg {
                    Term::Const(v) => sels.push(ScalarExpr::eq(
                        ScalarExpr::Col(i),
                        ScalarExpr::Lit(v.clone()),
                    )),
                    Term::Var(x) => {
                        if let Some(&fi) = local.get(x.as_str()) {
                            sels.push(ScalarExpr::eq(
                                ScalarExpr::Col(fi),
                                ScalarExpr::Col(i),
                            ));
                        } else {
                            local.insert(x, i);
                        }
                    }
                }
            }
            if !sels.is_empty() {
                aplan = aplan.select(ScalarExpr::conjunction(sels));
            }
            match plan {
                None => {
                    plan = Some(aplan);
                    for (x, i) in local {
                        var_cols.insert(x.to_owned(), i);
                    }
                    width = atom.args.len();
                }
                Some(p) => {
                    let mut on = Vec::new();
                    let mut fresh: Vec<(String, usize)> = Vec::new();
                    for (x, i) in &local {
                        match var_cols.get(*x) {
                            Some(&li) => on.push((li, *i)),
                            None => fresh.push(((*x).to_owned(), *i)),
                        }
                    }
                    plan = Some(LogicalPlan::Join {
                        left: Box::new(p),
                        right: Box::new(aplan),
                        kind: JoinKind::Inner,
                        on,
                        residual: None,
                    });
                    for (x, i) in fresh {
                        var_cols.insert(x, width + i);
                    }
                    width += atom.args.len();
                }
            }
        }

        let mut plan = plan.ok_or_else(|| {
            PrismaError::UnsafeRule(format!("rule `{rule}` has an empty positive body"))
        })?;

        // Comparison literals as a selection.
        let mut cmps = Vec::new();
        for lit in &rule.body {
            if let Literal::Cmp(op, l, r) = lit {
                let to_expr = |t: &Term| -> ScalarExpr {
                    match t {
                        Term::Const(v) => ScalarExpr::Lit(v.clone()),
                        Term::Var(x) => ScalarExpr::Col(var_cols[x.as_str()]),
                    }
                };
                cmps.push(ScalarExpr::cmp(*op, to_expr(l), to_expr(r)));
            }
        }
        if !cmps.is_empty() {
            plan = plan.select(ScalarExpr::conjunction(cmps));
        }

        // Head projection.
        let in_schema = plan.output_schema()?;
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for (i, arg) in rule.head.args.iter().enumerate() {
            match arg {
                Term::Var(x) => {
                    let col = var_cols[x.as_str()];
                    let src = in_schema.column(col).expect("in range");
                    exprs.push(ScalarExpr::Col(col));
                    cols.push(Column::nullable(x.clone(), src.dtype));
                }
                Term::Const(v) => {
                    exprs.push(ScalarExpr::Lit(v.clone()));
                    cols.push(Column::nullable(
                        format!("c{i}"),
                        v.data_type().unwrap_or(prisma_types::DataType::Str),
                    ));
                }
            }
        }
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: Schema::new(cols),
        })
    }
}

fn split_rules<'r>(
    rules: &[&'r Rule],
    pred: &str,
) -> (Vec<&'r Rule>, Vec<&'r Rule>, Vec<&'r Rule>) {
    let mut facts = Vec::new();
    let mut base = Vec::new();
    let mut rec = Vec::new();
    for r in rules {
        if r.body.is_empty() {
            facts.push(*r);
        } else if r.body_atoms().any(|a| a.pred == pred) {
            rec.push(*r);
        } else {
            base.push(*r);
        }
    }
    (facts, base, rec)
}

fn fact_schema(pred: &str, rows: &[Tuple]) -> Schema {
    let arity = rows.first().map(Tuple::arity).unwrap_or(0);
    let cols = (0..arity)
        .map(|i| {
            let dtype = rows
                .first()
                .and_then(|r| r.get(i).data_type())
                .unwrap_or(prisma_types::DataType::Str);
            Column::nullable(format!("{pred}_{i}"), dtype)
        })
        .collect();
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use crate::seminaive::{answer_query, evaluate};
    use prisma_relalg::{eval, Relation};
    use prisma_types::{tuple, DataType};

    fn edb() -> (HashMap<String, Schema>, HashMap<String, Relation>) {
        let schema = Schema::new(vec![
            Column::new("src", DataType::Str),
            Column::new("dst", DataType::Str),
        ]);
        let rel = Relation::new(
            schema.clone(),
            vec![
                tuple!["john", "mary"],
                tuple!["mary", "sue"],
                tuple!["sue", "tim"],
                tuple!["ann", "john"],
            ],
        );
        let mut schemas = HashMap::new();
        schemas.insert("parent".to_owned(), schema);
        let mut db = HashMap::new();
        db.insert("parent".to_owned(), rel);
        (schemas, db)
    }

    #[test]
    fn recursive_ancestor_matches_seminaive_evaluator() {
        let prog = parse_program(
            "ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        let q = parse_query("?- ancestor(ann, X).").unwrap();
        let (schemas, db) = edb();
        // Algebra path.
        let plan = compile_query(&prog, &q, &schemas).unwrap();
        let via_algebra = eval(&plan, &db).unwrap().canonicalized();
        // Direct evaluator path.
        let (idb, _) = evaluate(&prog, &db).unwrap();
        let via_eval = answer_query(&q, &idb, &db).unwrap().canonicalized();
        assert_eq!(via_algebra.tuples(), via_eval.tuples());
        assert_eq!(via_algebra.len(), 4); // john, mary, sue, tim
    }

    #[test]
    fn non_recursive_views_and_facts() {
        let prog = parse_program(
            "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             vip(ann).
             vip_grandchild(Z) :- vip(X), grandparent(X, Z).",
        )
        .unwrap();
        let q = parse_query("?- vip_grandchild(W).").unwrap();
        let (schemas, db) = edb();
        let plan = compile_query(&prog, &q, &schemas).unwrap();
        let out = eval(&plan, &db).unwrap();
        assert_eq!(out.tuples(), &[tuple!["mary"]]);
    }

    #[test]
    fn comparisons_translate() {
        let prog = parse_program("big(X) :- nums(X), X > 5.").unwrap();
        let mut schemas = HashMap::new();
        schemas.insert(
            "nums".to_owned(),
            Schema::new(vec![Column::new("n", DataType::Int)]),
        );
        let mut db = HashMap::new();
        db.insert(
            "nums".to_owned(),
            Relation::new(
                schemas["nums"].clone(),
                vec![tuple![3], tuple![7], tuple![9]],
            ),
        );
        let q = parse_query("?- big(X).").unwrap();
        let plan = compile_query(&prog, &q, &schemas).unwrap();
        let out = eval(&plan, &db).unwrap().canonicalized();
        assert_eq!(out.tuples(), &[tuple![7], tuple![9]]);
    }

    #[test]
    fn constant_query_argument_selects() {
        let prog = parse_program(
            "ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        let q = parse_query("?- ancestor(X, tim).").unwrap();
        let (schemas, db) = edb();
        let plan = compile_query(&prog, &q, &schemas).unwrap();
        let out = eval(&plan, &db).unwrap();
        assert_eq!(out.len(), 4); // sue, mary, john, ann
        assert_eq!(out.schema().column(0).unwrap().name, "X");
    }

    #[test]
    fn mutual_recursion_rejected_with_pointer_to_evaluator() {
        let prog = parse_program(
            "even(X) :- zero(X).
             even(Y) :- succ(X, Y), odd(X).
             odd(Y) :- succ(X, Y), even(X).",
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert(
            "zero".to_owned(),
            Schema::new(vec![Column::new("n", DataType::Int)]),
        );
        schemas.insert(
            "succ".to_owned(),
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        );
        let q = parse_query("?- even(X).").unwrap();
        let err = compile_query(&prog, &q, &schemas).unwrap_err();
        assert!(err.to_string().contains("semi-naive"));
    }

    #[test]
    fn nonlinear_recursion_rejected() {
        let prog = parse_program(
            "path(X, Y) :- edge(X, Y).
             path(X, Y) :- path(X, Z), path(Z, Y).",
        )
        .unwrap();
        let mut schemas = HashMap::new();
        schemas.insert(
            "edge".to_owned(),
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        );
        let q = parse_query("?- path(X, Y).").unwrap();
        assert!(compile_query(&prog, &q, &schemas).is_err());
    }

    #[test]
    fn recursion_without_base_rejected() {
        let prog = parse_program("loop(X) :- loop(X).").unwrap();
        let schemas: HashMap<String, Schema> = HashMap::new();
        let q = parse_query("?- loop(X).").unwrap();
        assert!(compile_query(&prog, &q, &schemas).is_err());
    }
}
