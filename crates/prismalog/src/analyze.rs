//! Static analysis: safety, arity consistency, dependency SCCs.

use std::collections::{HashMap, HashSet};

use prisma_types::{PrismaError, Result};

use crate::ast::{Literal, Program, Rule};

/// Check the **safety** (range restriction) condition: every variable in a
/// rule head or in a comparison literal must occur in a positive body
/// atom. Unsafe rules would denote infinite relations.
pub fn check_safety(rule: &Rule) -> Result<()> {
    let mut bound: HashSet<&str> = HashSet::new();
    for atom in rule.body_atoms() {
        for v in atom.vars() {
            bound.insert(v);
        }
    }
    for v in rule.head.vars() {
        if !bound.contains(v) && !rule.body.is_empty() {
            return Err(PrismaError::UnsafeRule(format!(
                "head variable {v} of `{rule}` is not bound by a body atom"
            )));
        }
        if rule.body.is_empty() {
            return Err(PrismaError::UnsafeRule(format!(
                "fact `{rule}` contains a variable"
            )));
        }
    }
    for lit in &rule.body {
        if let Literal::Cmp(_, l, r) = lit {
            for t in [l, r] {
                if let Some(v) = t.as_var() {
                    if !bound.contains(v) {
                        return Err(PrismaError::UnsafeRule(format!(
                            "comparison variable {v} of `{rule}` is not bound by a body atom"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Check every rule of a program for safety and for consistent predicate
/// arities (across heads, bodies and EDB uses).
pub fn check_program(program: &Program) -> Result<()> {
    let mut arities: HashMap<String, usize> = HashMap::new();
    let mut note = |pred: &str, n: usize| -> Result<()> {
        match arities.get(pred) {
            Some(&m) if m != n => Err(PrismaError::UnsafeRule(format!(
                "predicate {pred} used with arities {m} and {n}"
            ))),
            _ => {
                arities.insert(pred.to_owned(), n);
                Ok(())
            }
        }
    };
    for rule in &program.rules {
        check_safety(rule)?;
        note(&rule.head.pred, rule.head.args.len())?;
        for atom in rule.body_atoms() {
            note(&atom.pred, atom.args.len())?;
        }
    }
    Ok(())
}

/// Strongly connected components of the predicate dependency graph, in
/// **topological order** (dependencies before dependents). Predicates not
/// defined in the program (EDB relations) are excluded.
pub fn sccs(program: &Program) -> Vec<Vec<String>> {
    let defined: HashSet<&str> = program
        .rules
        .iter()
        .map(|r| r.head.pred.as_str())
        .collect();
    // Edges: head -> body predicate (for defined predicates only).
    let mut nodes: Vec<&str> = defined.iter().copied().collect();
    nodes.sort();
    let index: HashMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj = vec![Vec::new(); nodes.len()];
    for rule in &program.rules {
        let h = index[rule.head.pred.as_str()];
        for atom in rule.body_atoms() {
            if let Some(&b) = index.get(atom.pred.as_str()) {
                if !adj[h].contains(&b) {
                    adj[h].push(b);
                }
            }
        }
    }
    // Tarjan's algorithm (iterative enough at these sizes to recurse).
    struct T<'a> {
        adj: &'a [Vec<usize>],
        idx: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: usize,
        out: Vec<Vec<usize>>,
    }
    impl T<'_> {
        fn visit(&mut self, v: usize) {
            self.idx[v] = Some(self.counter);
            self.low[v] = self.counter;
            self.counter += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.idx[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.idx[w].expect("visited"));
                }
            }
            if Some(self.low[v]) == self.idx[v] {
                let mut comp = Vec::new();
                loop {
                    let w = self.stack.pop().expect("non-empty");
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.out.push(comp);
            }
        }
    }
    let mut t = T {
        adj: &adj,
        idx: vec![None; nodes.len()],
        low: vec![0; nodes.len()],
        on_stack: vec![false; nodes.len()],
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for v in 0..nodes.len() {
        if t.idx[v].is_none() {
            t.visit(v);
        }
    }
    // Tarjan emits SCCs in reverse topological order of the condensation
    // when edges point head -> dependency; a component is emitted only
    // after everything it depends on, so the emission order IS
    // dependencies-first.
    t.out
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| nodes[i].to_owned()).collect())
        .collect()
}

/// Is `pred` recursive (directly or through its SCC)?
pub fn is_recursive(program: &Program, pred: &str) -> bool {
    for comp in sccs(program) {
        if comp.iter().any(|p| p == pred) {
            if comp.len() > 1 {
                return true;
            }
            // Self-loop?
            return program.rules_for(pred).iter().any(|r| {
                r.body_atoms().any(|a| a.pred == pred)
            });
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn safety_violations() {
        let p = parse_program("bad(X, Y) :- edge(X, X2).").unwrap();
        assert!(check_program(&p).is_err());
        let p = parse_program("bad(X) :- edge(X, Y), Z < 3.").unwrap();
        assert!(check_program(&p).is_err());
        let p = parse_program("fact(X).").unwrap();
        assert!(check_program(&p).is_err());
        let p = parse_program("good(X) :- edge(X, Y), Y < 3.").unwrap();
        assert!(check_program(&p).is_ok());
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = parse_program("p(a). q(X) :- p(X, X).").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn sccs_topological_and_recursion() {
        let p = parse_program(
            "a(X) :- base(X).
             b(X) :- a(X).
             c(X) :- b(X), c(X).
             even(X) :- zero(X).
             even(X) :- succ(X, Y), odd(Y).
             odd(X) :- succ(X, Y), even(Y).",
        )
        .unwrap();
        let comps = sccs(&p);
        // a before b before c.
        let pos = |name: &str| {
            comps
                .iter()
                .position(|c| c.iter().any(|p| p == name))
                .unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
        // even/odd are one mutual SCC.
        let eo = &comps[pos("even")];
        assert_eq!(eo.len(), 2);
        assert!(is_recursive(&p, "even"));
        assert!(is_recursive(&p, "odd"));
        assert!(is_recursive(&p, "c"));
        assert!(!is_recursive(&p, "a"));
        assert!(!is_recursive(&p, "b"));
    }
}
