//! PRISMAlog abstract syntax: definite, function-free Horn clauses.

use std::fmt;

use prisma_storage::expr::CmpOp;
use prisma_types::Value;

/// A term: a variable or a constant (function-free, per the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable (upper-case initial in the surface syntax).
    Var(String),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "{s}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate applied to terms: `ancestor(X, Y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// All distinct variable names, in order of first occurrence.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Some(v) = t.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: a positive atom or a comparison built-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Positive predicate atom.
    Atom(Atom),
    /// Comparison `left op right` between variables/constants.
    Cmp(CmpOp, Term, Term),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// A Horn clause: `head :- body.` (facts have an empty body).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

impl Rule {
    /// True for ground facts (empty body, all-constant head).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.args.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// Positive body atoms.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Atom(a) => Some(a),
            Literal::Cmp(..) => None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A PRISMAlog program: rules and facts (queries are parsed separately).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// All clauses in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Names of all predicates defined by rules or facts in this program
    /// (the IDB plus program-local facts).
    pub fn defined_predicates(&self) -> Vec<String> {
        let mut names: Vec<String> = self.rules.iter().map(|r| r.head.pred.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Rules (including facts) whose head is `pred`.
    pub fn rules_for(&self, pred: &str) -> Vec<&Rule> {
        self.rules.iter().filter(|r| r.head.pred == pred).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}
