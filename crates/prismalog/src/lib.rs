//! # prisma-prismalog
//!
//! **PRISMAlog** — the logic-programming interface of the PRISMA machine
//! (paper §2.3):
//!
//! > "The logic programming language that is defined in PRISMA is called
//! > PRISMAlog and has an expressive power similar to Datalog and LDL. It
//! > is based on definite, function-free Horn clauses and its syntax is
//! > similar to Prolog. One of the main differences between pure Prolog
//! > and PRISMAlog is that the latter is set-oriented, which makes it more
//! > suitable for parallel evaluation. The semantics of PRISMAlog is
//! > defined in terms of extensions of the relational algebra. Facts
//! > correspond to tuples in relations in the database. Rules are view
//! > definitions including recursion."
//!
//! This crate implements exactly that contract:
//!
//! * [`parser`] — Prolog-like syntax: facts, rules (`:-`), queries (`?-`),
//!   comparison built-ins;
//! * [`analyze`] — safety (range restriction), arity consistency, and the
//!   predicate dependency graph with SCC detection;
//! * [`translate`] — rules become **relational-algebra view definitions**;
//!   a linearly self-recursive predicate becomes a
//!   [`prisma_relalg::LogicalPlan::Fixpoint`] (evaluated semi-naively),
//!   and the `closure(edge)` idiom maps onto the OFM transitive-closure
//!   operator;
//! * [`seminaive`] — a direct set-oriented semi-naive evaluator for
//!   arbitrary (including mutually) recursive programs, used as ground
//!   truth for the algebra translation and for the E6 experiment's
//!   naive-vs-semi-naive ablation.

pub mod analyze;
pub mod ast;
pub mod parser;
pub mod seminaive;
pub mod translate;

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use parser::{parse_program, parse_query};
pub use seminaive::{evaluate, EvalStats};
pub use translate::{compile_query, SchemaSource};
