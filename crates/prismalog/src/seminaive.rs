//! Set-oriented bottom-up evaluation of PRISMAlog programs.
//!
//! This is the "set-oriented … more suitable for parallel evaluation"
//! semantics of paper §2.3, implemented directly: predicates denote tuple
//! sets, rules fire as joins, recursion runs to fixpoint. Two modes:
//!
//! * **semi-naive** (the default): each iteration joins only against the
//!   previous iteration's *delta*, the standard optimization;
//! * **naive**: each iteration re-joins the full relations — kept as the
//!   E6 ablation baseline.
//!
//! The evaluator handles arbitrary positive programs, including mutual
//! recursion (which the algebra translator in [`crate::translate`]
//! deliberately does not).

use std::collections::HashMap;

use prisma_relalg::{Relation, RelationProvider};
use prisma_storage::{FastMap, FastSet};
use prisma_types::{Column, DataType, PrismaError, Result, Schema, Tuple, Value};

use crate::analyze::{check_program, sccs};
use crate::ast::{Atom, Literal, Program, Rule, Term};

type Row = Vec<Value>;
type TupleSet = FastSet<Row>;

/// Evaluation counters for the E6 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations across all recursive SCCs.
    pub iterations: u64,
    /// Rule firings (rule × iteration instantiations).
    pub rule_firings: u64,
    /// Tuples derived (including duplicates rejected by set semantics).
    pub tuples_considered: u64,
}

/// Evaluation mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Join deltas only (default).
    SemiNaive,
    /// Re-join full relations each round (E6 baseline).
    Naive,
}

/// Evaluate `program` to a fixpoint. EDB predicates (used but not defined)
/// are fetched from `provider`. Returns all defined predicates as
/// relations plus the evaluation stats.
pub fn evaluate(
    program: &Program,
    provider: &dyn RelationProvider,
) -> Result<(HashMap<String, Relation>, EvalStats)> {
    evaluate_mode(program, provider, Mode::SemiNaive)
}

/// Evaluate with an explicit [`Mode`].
pub fn evaluate_mode(
    program: &Program,
    provider: &dyn RelationProvider,
    mode: Mode,
) -> Result<(HashMap<String, Relation>, EvalStats)> {
    check_program(program)?;
    let mut stats = EvalStats::default();
    let defined = program.defined_predicates();

    // Load EDB relations.
    let mut rels: HashMap<String, TupleSet> = HashMap::new();
    let mut schemas: HashMap<String, Schema> = HashMap::new();
    for rule in &program.rules {
        for atom in rule.body_atoms() {
            if !defined.contains(&atom.pred) && !rels.contains_key(&atom.pred) {
                let rel = provider.relation(&atom.pred)?;
                schemas.insert(atom.pred.clone(), rel.schema().clone());
                rels.insert(
                    atom.pred.clone(),
                    rel.tuples().iter().map(|t| t.values().to_vec()).collect(),
                );
            }
        }
    }
    for pred in &defined {
        rels.entry(pred.clone()).or_default();
    }

    // Facts seed their predicates.
    for rule in &program.rules {
        if rule.body.is_empty() {
            let row: Row = rule
                .head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(v) => v.clone(),
                    Term::Var(_) => unreachable!("safety check rejects variable facts"),
                })
                .collect();
            rels.get_mut(&rule.head.pred).expect("seeded").insert(row);
        }
    }

    // Evaluate SCCs dependencies-first.
    for comp in sccs(program) {
        let comp_rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| comp.contains(&r.head.pred) && !r.body.is_empty())
            .collect();
        if comp_rules.is_empty() {
            continue;
        }
        let recursive = comp.len() > 1
            || comp_rules
                .iter()
                .any(|r| r.body_atoms().any(|a| comp.contains(&a.pred)));

        if !recursive {
            for rule in &comp_rules {
                let derived = fire_rule(rule, &rels, None, &mut stats)?;
                let target = rels.get_mut(&rule.head.pred).expect("seeded");
                for row in derived {
                    target.insert(row);
                }
            }
            continue;
        }

        // Recursive SCC: iterate to fixpoint.
        let mut deltas: HashMap<String, TupleSet> = HashMap::new();
        // Round 0: fire everything naively to seed the deltas.
        stats.iterations += 1;
        for rule in &comp_rules {
            let derived = fire_rule(rule, &rels, None, &mut stats)?;
            let target = rels.get_mut(&rule.head.pred).expect("seeded");
            let delta = deltas.entry(rule.head.pred.clone()).or_default();
            for row in derived {
                if target.insert(row.clone()) {
                    delta.insert(row);
                }
            }
        }
        loop {
            if deltas.values().all(TupleSet::is_empty) {
                break;
            }
            stats.iterations += 1;
            let mut next_deltas: HashMap<String, TupleSet> = HashMap::new();
            for rule in &comp_rules {
                let rec_positions: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| match l {
                        Literal::Atom(a) if comp.contains(&a.pred) => Some(i),
                        _ => None,
                    })
                    .collect();
                if rec_positions.is_empty() {
                    continue; // base rule: already fired in round 0
                }
                match mode {
                    Mode::SemiNaive => {
                        // One firing per recursive occurrence, with that
                        // occurrence restricted to the delta.
                        for &pos in &rec_positions {
                            let Literal::Atom(a) = &rule.body[pos] else {
                                unreachable!()
                            };
                            let Some(delta) = deltas.get(&a.pred) else {
                                continue;
                            };
                            if delta.is_empty() {
                                continue;
                            }
                            let derived =
                                fire_rule(rule, &rels, Some((pos, delta)), &mut stats)?;
                            let target = rels.get_mut(&rule.head.pred).expect("seeded");
                            let nd = next_deltas.entry(rule.head.pred.clone()).or_default();
                            for row in derived {
                                if target.insert(row.clone()) {
                                    nd.insert(row);
                                }
                            }
                        }
                    }
                    Mode::Naive => {
                        let derived = fire_rule(rule, &rels, None, &mut stats)?;
                        let target = rels.get_mut(&rule.head.pred).expect("seeded");
                        let nd = next_deltas.entry(rule.head.pred.clone()).or_default();
                        for row in derived {
                            if target.insert(row.clone()) {
                                nd.insert(row);
                            }
                        }
                    }
                }
            }
            deltas = next_deltas;
        }
    }

    // Materialize defined predicates as relations.
    let mut out = HashMap::new();
    for pred in &defined {
        let rows = &rels[pred];
        let arity = program
            .rules_for(pred)
            .first()
            .map(|r| r.head.args.len())
            .unwrap_or(0);
        let schema = infer_schema(pred, arity, rows);
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r.clone())).collect();
        out.insert(pred.clone(), Relation::new(schema, tuples));
    }
    Ok((out, stats))
}

/// Answer a query atom against evaluated predicates: constant arguments
/// filter, repeated variables must match, and the result columns are the
/// query's distinct variables in first-occurrence order.
pub fn answer_query(
    query: &Atom,
    idb: &HashMap<String, Relation>,
    provider: &dyn RelationProvider,
) -> Result<Relation> {
    let rel = match idb.get(&query.pred) {
        Some(r) => std::sync::Arc::new(r.clone()),
        None => provider.relation(&query.pred)?,
    };
    if rel.schema().arity() != query.args.len() {
        return Err(PrismaError::ArityMismatch {
            expected: rel.schema().arity(),
            got: query.args.len(),
        });
    }
    let mut var_cols: Vec<(String, usize)> = Vec::new();
    let mut out_rows = Vec::new();
    'tuples: for t in rel.tuples() {
        let mut bound: HashMap<&str, &Value> = HashMap::new();
        for (i, arg) in query.args.iter().enumerate() {
            match arg {
                Term::Const(v) => {
                    if t.get(i) != v {
                        continue 'tuples;
                    }
                }
                Term::Var(x) => {
                    if let Some(&prev) = bound.get(x.as_str()) {
                        if prev != t.get(i) {
                            continue 'tuples;
                        }
                    } else {
                        bound.insert(x, t.get(i));
                        if !var_cols.iter().any(|(v, _)| v == x) {
                            var_cols.push((x.clone(), i));
                        }
                    }
                }
            }
        }
        out_rows.push(Tuple::new(
            var_cols.iter().map(|(_, i)| t.get(*i).clone()).collect(),
        ));
    }
    // Column metadata from the variable positions.
    let cols: Vec<Column> = query
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.as_var().map(|v| (v.to_owned(), i)))
        .fold(Vec::new(), |mut acc, (v, i)| {
            if !acc.iter().any(|c: &Column| c.name == v) {
                let src = rel.schema().column(i).expect("arity checked");
                acc.push(Column::nullable(v, src.dtype));
            }
            acc
        });
    Ok(Relation::new(Schema::new(cols), out_rows).distinct())
}

fn infer_schema(pred: &str, arity: usize, rows: &TupleSet) -> Schema {
    let sample = rows.iter().next();
    let cols = (0..arity)
        .map(|i| {
            let dtype = sample
                .and_then(|r| r.get(i))
                .and_then(Value::data_type)
                .unwrap_or(DataType::Str);
            Column::nullable(format!("{pred}_{i}"), dtype)
        })
        .collect();
    Schema::new(cols)
}

/// Fire one rule against the current relations; `delta_at` restricts the
/// body atom at the given literal index to the delta set.
fn fire_rule(
    rule: &Rule,
    rels: &HashMap<String, TupleSet>,
    delta_at: Option<(usize, &TupleSet)>,
    stats: &mut EvalStats,
) -> Result<Vec<Row>> {
    stats.rule_firings += 1;
    // Bindings: rows over the variables bound so far.
    let mut var_idx: HashMap<&str, usize> = HashMap::new();
    let mut bindings: Vec<Row> = vec![Vec::new()];
    let mut pending_cmps: Vec<&Literal> = Vec::new();

    for (li, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Cmp(..) => pending_cmps.push(lit),
            Literal::Atom(atom) => {
                let full = rels.get(&atom.pred).ok_or_else(|| {
                    PrismaError::UnknownRelation(atom.pred.clone())
                })?;
                let source: &TupleSet = match delta_at {
                    Some((pos, delta)) if pos == li => delta,
                    _ => full,
                };
                // Key positions: (binding column, atom position) for vars
                // already bound; plus constant checks; plus repeated vars
                // inside this atom.
                let mut join_keys: Vec<(usize, usize)> = Vec::new();
                let mut const_checks: Vec<(usize, &Value)> = Vec::new();
                let mut local_first: HashMap<&str, usize> = HashMap::new();
                let mut local_dups: Vec<(usize, usize)> = Vec::new();
                let mut new_vars: Vec<(&str, usize)> = Vec::new();
                for (i, arg) in atom.args.iter().enumerate() {
                    match arg {
                        Term::Const(v) => const_checks.push((i, v)),
                        Term::Var(x) => {
                            if let Some(&fi) = local_first.get(x.as_str()) {
                                local_dups.push((fi, i));
                            } else {
                                local_first.insert(x, i);
                                if let Some(&bi) = var_idx.get(x.as_str()) {
                                    join_keys.push((bi, i));
                                } else {
                                    new_vars.push((x, i));
                                }
                            }
                        }
                    }
                }
                // Index the source on the join-key positions.
                let mut index: FastMap<Row, Vec<&Row>> = FastMap::default();
                'rows: for row in source {
                    for (i, v) in &const_checks {
                        if &row[*i] != *v {
                            continue 'rows;
                        }
                    }
                    for (a, b) in &local_dups {
                        if row[*a] != row[*b] {
                            continue 'rows;
                        }
                    }
                    let key: Row = join_keys.iter().map(|&(_, i)| row[i].clone()).collect();
                    index.entry(key).or_default().push(row);
                }
                // Join bindings with the indexed source.
                let mut next = Vec::new();
                for b in &bindings {
                    let key: Row = join_keys.iter().map(|&(bi, _)| b[bi].clone()).collect();
                    if let Some(matches) = index.get(&key) {
                        for row in matches {
                            let mut nb = b.clone();
                            for &(_, i) in &new_vars {
                                nb.push(row[i].clone());
                            }
                            next.push(nb);
                        }
                    }
                }
                for (x, _) in new_vars {
                    let idx = var_idx.len();
                    var_idx.insert(x, idx);
                }
                bindings = next;
                if bindings.is_empty() {
                    break;
                }
            }
        }
    }

    // Apply comparison literals.
    for lit in pending_cmps {
        let Literal::Cmp(op, l, r) = lit else {
            unreachable!()
        };
        let fetch = |t: &Term, b: &Row| -> Value {
            match t {
                Term::Const(v) => v.clone(),
                Term::Var(x) => b[var_idx[x.as_str()]].clone(),
            }
        };
        bindings.retain(|b| {
            let (lv, rv) = (fetch(l, b), fetch(r, b));
            lv.sql_cmp(&rv).map(|o| op.test(o)).unwrap_or(false)
        });
    }

    // Project head.
    let mut out = Vec::with_capacity(bindings.len());
    for b in &bindings {
        stats.tuples_considered += 1;
        let row: Row = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(v) => v.clone(),
                Term::Var(x) => b[var_idx[x.as_str()]].clone(),
            })
            .collect();
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use prisma_types::tuple;

    fn edge_db() -> HashMap<String, Relation> {
        let schema = Schema::new(vec![
            Column::new("src", DataType::Str),
            Column::new("dst", DataType::Str),
        ]);
        let mut db = HashMap::new();
        db.insert(
            "parent".to_owned(),
            Relation::new(
                schema,
                vec![
                    tuple!["john", "mary"],
                    tuple!["mary", "sue"],
                    tuple!["sue", "tim"],
                ],
            ),
        );
        db
    }

    #[test]
    fn ancestor_closure() {
        let prog = parse_program(
            "ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
        )
        .unwrap();
        let db = edge_db();
        let (idb, stats) = evaluate(&prog, &db).unwrap();
        assert_eq!(idb["ancestor"].len(), 6); // 3 + 2 + 1
        assert!(stats.iterations >= 2);
        let q = parse_query("?- ancestor(john, X).").unwrap();
        let ans = answer_query(&q, &idb, &db).unwrap();
        assert_eq!(ans.len(), 3);
        assert_eq!(ans.schema().column(0).unwrap().name, "X");
    }

    #[test]
    fn naive_and_seminaive_agree_but_seminaive_fires_less() {
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("edge({i}, {}).\n", i + 1));
        }
        let prog = parse_program(&format!(
            "{facts}
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- edge(X, Z), path(Z, Y)."
        ))
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (semi, s_stats) = evaluate_mode(&prog, &db, Mode::SemiNaive).unwrap();
        let (naive, n_stats) = evaluate_mode(&prog, &db, Mode::Naive).unwrap();
        assert_eq!(
            semi["path"].clone().canonicalized(),
            naive["path"].clone().canonicalized()
        );
        assert_eq!(semi["path"].len(), 31 * 30 / 2);
        assert!(
            s_stats.tuples_considered < n_stats.tuples_considered,
            "semi-naive {s_stats:?} must consider fewer tuples than naive {n_stats:?}"
        );
    }

    #[test]
    fn mutual_recursion_even_odd() {
        let prog = parse_program(
            "num(0). num(1). num(2). num(3). num(4). num(5).
             succ(0,1). succ(1,2). succ(2,3). succ(3,4). succ(4,5).
             even(0).
             even(Y) :- succ(X, Y), odd(X).
             odd(Y) :- succ(X, Y), even(X).",
        )
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        let evens: Vec<i64> = idb["even"]
            .clone()
            .canonicalized()
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(evens, vec![0, 2, 4]);
        let odds: Vec<i64> = idb["odd"]
            .clone()
            .canonicalized()
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(odds, vec![1, 3, 5]);
    }

    #[test]
    fn comparisons_filter_bindings() {
        let prog = parse_program(
            "senior(X) :- person(X, A), A >= 65.
             person(alice, 70).
             person(bob, 30).",
        )
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        assert_eq!(idb["senior"].len(), 1);
        assert_eq!(idb["senior"].tuples()[0], tuple!["alice"]);
    }

    #[test]
    fn repeated_variables_in_atom() {
        let prog = parse_program(
            "selfloop(X) :- edge(X, X).
             edge(a, b). edge(b, b). edge(c, c).",
        )
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        assert_eq!(idb["selfloop"].len(), 2);
    }

    #[test]
    fn constants_in_body_atoms() {
        let prog = parse_program(
            "mary_child(X) :- parent(mary, X).",
        )
        .unwrap();
        let db = edge_db();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        assert_eq!(idb["mary_child"].tuples(), &[tuple!["sue"]]);
    }

    #[test]
    fn query_with_repeated_variable() {
        let prog = parse_program(
            "edge(a, a). edge(a, b). edge(b, b).
             e(X, Y) :- edge(X, Y).",
        )
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        let q = parse_query("?- e(X, X).").unwrap();
        let ans = answer_query(&q, &idb, &db).unwrap();
        assert_eq!(ans.len(), 2);
        assert_eq!(ans.schema().arity(), 1);
    }

    #[test]
    fn missing_edb_is_an_error() {
        let prog = parse_program("p(X) :- ghost(X).").unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        assert!(evaluate(&prog, &db).is_err());
    }

    #[test]
    fn cyclic_graph_terminates() {
        let prog = parse_program(
            "edge(a, b). edge(b, c). edge(c, a).
             path(X, Y) :- edge(X, Y).
             path(X, Y) :- path(X, Z), edge(Z, Y).",
        )
        .unwrap();
        let db: HashMap<String, Relation> = HashMap::new();
        let (idb, _) = evaluate(&prog, &db).unwrap();
        assert_eq!(idb["path"].len(), 9); // complete on {a,b,c}
    }
}
