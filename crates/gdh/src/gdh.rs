//! The Global Data Handler façade: parsers + optimizer + transactions +
//! parallel executor, supervising the OFM actors.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use prisma_multicomputer::{CostModel, Topology};
use prisma_ofm::{Ofm, OfmKind};
use prisma_optimizer::{Optimizer, OptimizerConfig, StatsSource};
use prisma_poolx::{PoolRuntime, TrafficLedger};
use prisma_prismalog as plog;
use prisma_relalg::{LogicalPlan, Relation};
use prisma_sqlfe::{self as sqlfe, PlannedStatement};
use prisma_stable::DiskProfile;
use prisma_storage::expr::ScalarExpr;
use prisma_types::{
    MachineConfig, PeId, PrismaError, Result, Schema, Tuple, TxnId,
};

use crate::allocation::AllocationPolicy;
use crate::dictionary::{DataDictionary, FragmentHandle, RelationInfo};
use crate::exec::{ExecMetrics, ParallelExecutor};
use crate::locks::{LockManager, LockMode};
use crate::message::{GdhMsg, OfmActor};
use crate::txn::TransactionManager;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A query result.
    Rows(Relation),
    /// DML row count.
    Affected(usize),
    /// DDL success.
    Done,
}

impl QueryOutcome {
    /// The relation, for callers that know they ran a query.
    pub fn rows(self) -> Result<Relation> {
        match self {
            QueryOutcome::Rows(r) => Ok(r),
            other => Err(PrismaError::Execution(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// The affected-row count, for callers that know they ran DML.
    pub fn affected(self) -> Result<usize> {
        match self {
            QueryOutcome::Affected(n) => Ok(n),
            other => Err(PrismaError::Execution(format!(
                "expected a row count, got {other:?}"
            ))),
        }
    }
}

/// One transaction's staged statistics effect on a relation, applied to
/// the dictionary only at commit (dropped on abort — rolled-back DML
/// must never skew row estimates or stale freshness).
enum StagedDml {
    /// Per-fragment row deltas (INSERT/DELETE).
    PerFragment(Vec<(prisma_types::FragmentId, i64)>),
    /// Values changed, row count didn't (UPDATE): epoch bump only.
    EpochOnly,
}

/// Receive one reply against a **deadline shared by the whole fan-out**:
/// each reply narrows the remaining wait instead of resetting the clock,
/// so N outstanding replies are bounded by one reply timeout total — a
/// slow-trickling participant can no longer stall N×timeout before the
/// error surfaces.
fn recv_by(
    mailbox: &prisma_poolx::ExternalMailbox<GdhMsg>,
    deadline: Instant,
) -> Result<GdhMsg> {
    mailbox.recv_timeout(deadline.saturating_duration_since(Instant::now()))
}

/// The GDH: the supervisor of the PRISMA DBMS (paper §2.2).
pub struct GlobalDataHandler {
    config: MachineConfig,
    runtime: Arc<PoolRuntime<GdhMsg>>,
    dictionary: Arc<DataDictionary>,
    locks: Arc<LockManager>,
    txns: TransactionManager,
    executor: ParallelExecutor,
    topology: Topology,
    allocation: AllocationPolicy,
    optimizer_config: OptimizerConfig,
    /// Statistics effects of in-flight transactions, keyed by txn —
    /// flushed to the dictionary at commit, discarded at abort.
    staged_stats: Mutex<HashMap<TxnId, Vec<(String, StagedDml)>>>,
    /// Per-PE compute worker pools for morsel-driven intra-fragment
    /// parallelism, sized by [`MachineConfig::effective_ofm_workers`].
    /// Shared-memory only: pool counters reach `ExecMetrics` through
    /// coordinator-side reads of this set, never through the wire.
    pools: Arc<prisma_poolx::PoolSet>,
    /// Fault injection hooks handed to every spawned OFM actor — inert
    /// in production (one atomic load per message) unless `FAULT_SEED`
    /// or [`GlobalDataHandler::set_fault_injector`] scripted faults.
    faults: Arc<prisma_faultx::FaultInjector>,
}

impl GlobalDataHandler {
    /// Boot the DBMS on a simulated machine: start the POOL-X runtime with
    /// one worker per PE, create stable-storage services on disk PEs, and
    /// stand up the supervisor components.
    pub fn boot(
        config: MachineConfig,
        allocation: AllocationPolicy,
        disk_profile: DiskProfile,
    ) -> Result<GlobalDataHandler> {
        config.validate()?;
        let cost = CostModel::new(&config)?;
        let topology = Topology::build(&config)?;
        let ledger = Arc::new(TrafficLedger::new(cost));
        let runtime: Arc<PoolRuntime<GdhMsg>> = PoolRuntime::start(config.num_pes, ledger);
        let dictionary = Arc::new(DataDictionary::new(config.clone(), disk_profile));
        let locks = Arc::new(LockManager::new());
        let coordinator_log = dictionary.stable_for(PeId(0)).wal;
        let txns = TransactionManager::new(runtime.clone(), locks.clone(), coordinator_log)
            .with_reply_timeout(config.reply_timeout());
        let pools = prisma_poolx::PoolSet::new(config.effective_ofm_workers());
        let executor = ParallelExecutor::new(runtime.clone(), dictionary.clone())
            .with_pools(pools.clone());
        Ok(GlobalDataHandler {
            config,
            runtime,
            dictionary,
            locks,
            txns,
            executor,
            topology,
            allocation,
            optimizer_config: OptimizerConfig::default(),
            staged_stats: Mutex::new(HashMap::new()),
            pools,
            faults: prisma_faultx::global().clone(),
        })
    }

    /// Replace the fault injector handed to subsequently spawned OFM
    /// actors and consulted by the executor's failure detector (call
    /// before `CREATE TABLE`; tests script faults per run instead of
    /// per process via `FAULT_SEED`).
    pub fn set_fault_injector(&mut self, faults: Arc<prisma_faultx::FaultInjector>) {
        self.executor.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// The fault injector in effect.
    pub fn fault_injector(&self) -> &Arc<prisma_faultx::FaultInjector> {
        &self.faults
    }

    /// Boot with paper defaults (64-PE mesh, load-balanced allocation,
    /// instant disks — benches override the profile).
    pub fn boot_default() -> Result<GlobalDataHandler> {
        GlobalDataHandler::boot(
            MachineConfig::paper_prototype(),
            AllocationPolicy::LoadBalanced,
            DiskProfile::instant(),
        )
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The data dictionary.
    pub fn dictionary(&self) -> &Arc<DataDictionary> {
        &self.dictionary
    }

    /// Communication ledger of the underlying runtime.
    pub fn ledger(&self) -> &Arc<TrafficLedger> {
        self.runtime.ledger()
    }

    /// The per-PE compute worker pools (morsel parallelism); benches
    /// read busy/steal counters from here.
    pub fn pools(&self) -> &Arc<prisma_poolx::PoolSet> {
        &self.pools
    }

    /// Override the optimizer configuration (E9 ablation).
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        self.optimizer_config = cfg;
    }

    /// Override the physical-lowering tunables (broadcast-vs-partition
    /// threshold); EXPLAIN and execution always share this config.
    pub fn set_physical_config(&mut self, cfg: prisma_optimizer::PhysicalConfig) {
        self.executor.set_physical_config(cfg);
    }

    /// Toggle streamed batch shipping on the parallel executor. `false`
    /// selects the materialized baseline — OFMs run their subplan to
    /// completion before the first ship — kept only so the E6 experiment
    /// can measure what the overlap buys.
    pub fn set_streaming(&mut self, streaming: bool) {
        self.executor.set_streaming(streaming);
    }

    /// Whether fragment replies currently stream per batch.
    pub fn executor_streaming(&self) -> bool {
        self.executor.streaming()
    }

    /// Toggle the columnar wire format on the parallel executor.
    /// `false` selects the historical row wire (chunks carry row
    /// batches) — the E11 baseline and the compatibility escape hatch;
    /// `PRISMA_ROW_WIRE=1` sets the same default machine-wide.
    pub fn set_columnar_wire(&mut self, columnar: bool) {
        self.executor.set_columnar_wire(columnar);
    }

    /// Whether chunks currently ship as typed column blocks.
    pub fn executor_columnar_wire(&self) -> bool {
        self.executor.columnar_wire()
    }

    /// Shut the machine down (drains actor mailboxes).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
    }

    // ---------------- DDL ----------------

    /// Create a relation with `frag_count` fragments, hash-fragmented on
    /// `frag_column` (None = round-robin), placed by the allocation
    /// policy; `co_locate_with` anchors locality-aware placement.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        frag_column: Option<usize>,
        frag_count: usize,
        co_locate_with: Option<&str>,
    ) -> Result<()> {
        if frag_count == 0 {
            return Err(PrismaError::Config("frag_count must be > 0".into()));
        }
        let anchor: Option<Vec<PeId>> = match co_locate_with {
            Some(other) => Some(self.dictionary.relation(other)?.pes()),
            None => None,
        };
        let load = self.dictionary.fragments_per_pe();
        let pes = self
            .allocation
            .place(frag_count, &load, &self.topology, anchor.as_deref());
        let mut fragments = Vec::with_capacity(frag_count);
        for pe in pes {
            let id = self.dictionary.alloc_fragment_id();
            let stable = self.dictionary.stable_for(pe);
            let mut ofm = Ofm::new(
                id,
                name,
                schema.clone(),
                OfmKind::Persistent {
                    wal: stable.wal,
                    checkpoints: stable.checkpoints,
                },
            );
            ofm.fragment_mut()
                .set_seal_rows(self.config.effective_seal_rows());
            if let Some(pool) = self.pools.pool_for(pe.0 as usize) {
                ofm.attach_pool(pool);
            }
            // Backup replica on a distinct PE, kept in sync by log
            // shipping from the primary — what a mid-query failover
            // flips to when the primary's PE dies.
            let backup = self.spawn_backup(id, name, &schema, pe, Vec::new())?;
            let mut actor_obj = OfmActor::with_faults(ofm, self.faults.clone());
            if let Some((_, backup_actor)) = backup {
                actor_obj = actor_obj.with_replica(backup_actor);
            }
            let actor = self.runtime.spawn(pe, Box::new(actor_obj))?;
            let mut handle = FragmentHandle::new(id, pe, actor);
            if let Some((backup_pe, backup_actor)) = backup {
                handle = handle.with_backup(backup_pe, backup_actor);
            }
            fragments.push(handle);
        }
        self.dictionary.register(
            name,
            RelationInfo {
                schema,
                frag_column,
                fragments,
            },
        )?;
        Ok(())
    }

    /// Spawn a backup replica OFM for fragment `id` on a PE distinct
    /// from `primary_pe`, pre-seeded with `seed` tuples (empty at
    /// CREATE TABLE; the recovered image when rebuilding after a
    /// crash). The replica is a main-memory mirror — redundancy *is*
    /// its durability story — fed by the primary's shipped log.
    /// Returns `None` on single-PE machines: no distinct PE survives a
    /// crash there.
    fn spawn_backup(
        &self,
        id: prisma_types::FragmentId,
        name: &str,
        schema: &Schema,
        primary_pe: PeId,
        seed: Vec<Tuple>,
    ) -> Result<Option<(PeId, prisma_types::ProcessId)>> {
        if self.config.num_pes < 2 {
            return Ok(None);
        }
        let backup_pe = PeId::from((primary_pe.index() + 1) % self.config.num_pes);
        let mut ofm = Ofm::new(id, name, schema.clone(), OfmKind::Transient);
        ofm.fragment_mut()
            .set_seal_rows(self.config.effective_seal_rows());
        for t in seed {
            ofm.fragment_mut().insert(t)?;
        }
        if let Some(pool) = self.pools.pool_for(backup_pe.index()) {
            ofm.attach_pool(pool);
        }
        let actor = self.runtime.spawn(
            backup_pe,
            Box::new(OfmActor::with_faults(ofm, self.faults.clone())),
        )?;
        Ok(Some((backup_pe, actor)))
    }

    /// Drop a relation and its OFM actors.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let _info = self.dictionary.unregister(name)?;
        // Actors are leaked-but-idle in this prototype (killing requires a
        // process context); their fragments become unreachable.
        Ok(())
    }

    /// Create an index on every fragment.
    pub fn create_index(&self, table: &str, column: usize, hash: bool) -> Result<()> {
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::CreateIndex {
                    column,
                    hash,
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::Ack { result, .. } => {
                    result?;
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Checkpoint every fragment of a relation; returns total simulated
    /// disk ns.
    pub fn checkpoint(&self, table: &str) -> Result<u64> {
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::Checkpoint {
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut total = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            if let GdhMsg::Ack { result, .. } = recv_by(&mailbox, deadline)? {
                total += result?;
            }
        }
        Ok(total)
    }

    /// Recover a relation from stable storage: fresh OFMs rebuilt from
    /// checkpoint + committed WAL suffix replace the old actors (paper
    /// §3.2's "automatic recovery upon system failures").
    pub fn recover_relation(&self, name: &str) -> Result<()> {
        let info = self.dictionary.relation(name)?;
        let mut new_fragments = Vec::with_capacity(info.fragments.len());
        for frag in &info.fragments {
            let stable = self.dictionary.stable_for(frag.pe);
            let mut ofm = Ofm::recover(
                frag.id,
                name,
                info.schema.clone(),
                stable.wal,
                stable.checkpoints,
            )?;
            ofm.fragment_mut()
                .set_seal_rows(self.config.effective_seal_rows());
            if let Some(pool) = self.pools.pool_for(frag.pe.0 as usize) {
                ofm.attach_pool(pool);
            }
            // Re-stand the backup replica, seeded with the recovered
            // image so log shipping resumes from a synced pair.
            let backup = self.spawn_backup(
                frag.id,
                name,
                &info.schema,
                frag.pe,
                ofm.fragment().all_tuples(),
            )?;
            let mut actor_obj = OfmActor::with_faults(ofm, self.faults.clone());
            if let Some((_, backup_actor)) = backup {
                actor_obj = actor_obj.with_replica(backup_actor);
            }
            let actor = self.runtime.spawn(frag.pe, Box::new(actor_obj))?;
            let mut handle = FragmentHandle::new(frag.id, frag.pe, actor);
            if let Some((backup_pe, backup_actor)) = backup {
                handle = handle.with_backup(backup_pe, backup_actor);
            }
            new_fragments.push(handle);
        }
        self.dictionary.unregister(name)?;
        self.dictionary.register(
            name,
            RelationInfo {
                schema: info.schema,
                frag_column: info.frag_column,
                fragments: new_fragments,
            },
        )?;
        Ok(())
    }

    // ---------------- transactions & DML ----------------

    /// Begin an explicit transaction.
    pub fn begin(&self) -> TxnId {
        self.txns.begin()
    }

    /// Commit an explicit transaction (2PC). The transaction's staged
    /// statistics effects reach the dictionary only now — estimates
    /// never see uncommitted work.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let result = self.txns.commit(txn).map(|_| ());
        self.settle_staged_stats(txn, result.is_ok());
        result
    }

    /// Abort an explicit transaction. Its staged statistics effects are
    /// discarded — the fragments rolled back, so the cached reports are
    /// still exact.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let result = self.txns.abort(txn);
        self.settle_staged_stats(txn, false);
        result
    }

    /// Stage one DML batch's statistics effect under its transaction.
    fn stage_dml(&self, txn: TxnId, table: &str, dml: StagedDml) {
        self.staged_stats
            .lock()
            .entry(txn)
            .or_default()
            .push((table.to_owned(), dml));
    }

    /// Apply (commit) or drop (abort) a transaction's staged statistics
    /// effects.
    fn settle_staged_stats(&self, txn: TxnId, committed: bool) {
        let Some(staged) = self.staged_stats.lock().remove(&txn) else {
            return;
        };
        if !committed {
            return;
        }
        for (table, dml) in staged {
            match dml {
                StagedDml::PerFragment(deltas) => {
                    self.dictionary.note_mutation_by_fragment(&table, &deltas);
                }
                StagedDml::EpochOnly => self.dictionary.note_mutation(&table, 0),
            }
        }
    }

    /// Insert rows under `txn` (routes each row to its fragment).
    pub fn insert(&self, txn: TxnId, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        let info = self.dictionary.relation(table)?;
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        // Route rows to fragments.
        let mut per_frag: HashMap<usize, Vec<Tuple>> = HashMap::new();
        for row in rows {
            info.schema.check_tuple(row.values())?;
            per_frag
                .entry(info.route(row.values())?)
                .or_default()
                .push(row);
        }
        let mailbox = self.runtime.external_mailbox();
        let mut outstanding = 0;
        for (frag_idx, rows) in per_frag {
            let frag = &info.fragments[frag_idx];
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::Insert {
                    txn,
                    rows,
                    reply_to: mailbox.id,
                    tag: frag_idx as u64,
                },
            )?;
            outstanding += 1;
        }
        let mut n = 0;
        let mut deltas: Vec<(prisma_types::FragmentId, i64)> = Vec::new();
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..outstanding {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { tag, result } => {
                    let k = result?;
                    n += k;
                    let frag = info.fragments.get(tag as usize).ok_or_else(|| {
                        PrismaError::Execution(format!("DML reply with unknown tag {tag}"))
                    })?;
                    deltas.push((frag.id, k as i64));
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        self.stage_dml(txn, table, StagedDml::PerFragment(deltas));
        Ok(n)
    }

    /// Delete matching rows under `txn` (broadcast to all fragments).
    pub fn delete(
        &self,
        txn: TxnId,
        table: &str,
        predicate: Option<ScalarExpr>,
    ) -> Result<usize> {
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::DeleteWhere {
                    txn,
                    predicate: predicate.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut n = 0;
        let mut deltas: Vec<(prisma_types::FragmentId, i64)> = Vec::new();
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { tag, result } => {
                    let k = result?;
                    n += k;
                    let frag = info.fragments.get(tag as usize).ok_or_else(|| {
                        PrismaError::Execution(format!("DML reply with unknown tag {tag}"))
                    })?;
                    deltas.push((frag.id, -(k as i64)));
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        self.stage_dml(txn, table, StagedDml::PerFragment(deltas));
        Ok(n)
    }

    /// Update matching rows under `txn`.
    pub fn update(
        &self,
        txn: TxnId,
        table: &str,
        assignments: Vec<(usize, ScalarExpr)>,
        predicate: Option<ScalarExpr>,
    ) -> Result<usize> {
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::UpdateWhere {
                    txn,
                    assignments: assignments.clone(),
                    predicate: predicate.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut n = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { result, .. } => n += result?,
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        if n > 0 {
            // Values changed (row count didn't): stats go stale at
            // commit, but an UPDATE matching nothing leaves every
            // report exact.
            self.stage_dml(txn, table, StagedDml::EpochOnly);
        }
        Ok(n)
    }

    // ---------------- queries ----------------

    /// Optimize and execute a query plan under shared locks.
    pub fn query(&self, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        let txn = self.txns.begin();
        let result = self.query_in(txn, plan);
        match &result {
            Ok(_) => {
                let _ = self.txns.commit(txn);
            }
            Err(_) => {
                let _ = self.txns.abort(txn);
            }
        }
        result
    }

    fn query_in(&self, txn: TxnId, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        for rel in plan.scanned_relations() {
            self.locks.acquire(txn, &rel, LockMode::Shared)?;
        }
        let optimizer = Optimizer::new(&*self.dictionary).with_config(self.optimizer_config);
        let (optimized, _trace) = optimizer.optimize(plan)?;
        self.executor.execute(&optimized)
    }

    /// Compile and execute a SQL query, returning rows plus the parallel
    /// executor's metrics (batch/repartition counters drive E2/E8).
    pub fn query_sql_with_metrics(&self, sql: &str) -> Result<(Relation, ExecMetrics)> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        let PlannedStatement::Query(plan) = planned else {
            return Err(PrismaError::Execution("expected a query".into()));
        };
        self.query(&plan)
    }

    /// Execute one SQL statement (auto-commit).
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutcome> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        match planned {
            PlannedStatement::Query(plan) => {
                let (rows, _) = self.query(&plan)?;
                Ok(QueryOutcome::Rows(rows))
            }
            PlannedStatement::CreateTable {
                name,
                schema,
                frag_column,
                frag_count,
            } => {
                self.create_table(&name, schema, frag_column, frag_count, None)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::DropTable(name) => {
                self.drop_table(&name)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::CreateIndex {
                table,
                column,
                hash,
            } => {
                self.create_index(&table, column, hash)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::Insert { table, rows } => {
                self.autocommit(|txn| self.insert(txn, &table, rows.clone()))
                    .map(QueryOutcome::Affected)
            }
            PlannedStatement::Delete { table, predicate } => {
                self.autocommit(|txn| self.delete(txn, &table, predicate.clone()))
                    .map(QueryOutcome::Affected)
            }
            PlannedStatement::Update {
                table,
                assignments,
                predicate,
            } => self
                .autocommit(|txn| {
                    self.update(txn, &table, assignments.clone(), predicate.clone())
                })
                .map(QueryOutcome::Affected),
        }
    }

    /// Execute one SQL statement inside an explicit transaction (locks
    /// held and changes visible-but-undecided until commit/abort).
    pub fn execute_sql_in(&self, txn: TxnId, sql: &str) -> Result<QueryOutcome> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        match planned {
            PlannedStatement::Query(plan) => {
                let (rows, _) = self.query_in(txn, &plan)?;
                Ok(QueryOutcome::Rows(rows))
            }
            PlannedStatement::Insert { table, rows } => {
                Ok(QueryOutcome::Affected(self.insert(txn, &table, rows)?))
            }
            PlannedStatement::Delete { table, predicate } => {
                Ok(QueryOutcome::Affected(self.delete(txn, &table, predicate)?))
            }
            PlannedStatement::Update {
                table,
                assignments,
                predicate,
            } => Ok(QueryOutcome::Affected(self.update(
                txn,
                &table,
                assignments,
                predicate,
            )?)),
            _ => Err(PrismaError::Execution(
                "DDL is not transactional; run it with execute_sql".into(),
            )),
        }
    }

    fn autocommit<T>(&self, f: impl Fn(TxnId) -> Result<T>) -> Result<T> {
        let txn = self.txns.begin();
        match f(txn) {
            Ok(v) => {
                self.commit(txn)?;
                Ok(v)
            }
            Err(e) => {
                let _ = self.abort(txn);
                Err(e)
            }
        }
    }

    /// EXPLAIN: the optimized logical plan, the lowered physical plan
    /// (with join-distribution and scan-projection choices), and the
    /// knowledge-base firing trace.
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        self.explain_inner(sql).map(|(_, out)| out)
    }

    /// Shared EXPLAIN body: compile + optimize + lower **once**,
    /// returning the optimized plan alongside the rendered output so
    /// EXPLAIN ANALYZE analyzes exactly the plan it prints.
    fn explain_inner(&self, sql: &str) -> Result<(LogicalPlan, String)> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        let PlannedStatement::Query(plan) = planned else {
            return Err(PrismaError::Execution("EXPLAIN expects a query".into()));
        };
        let optimizer = Optimizer::new(&*self.dictionary).with_config(self.optimizer_config);
        let (optimized, mut trace) = optimizer.optimize(&plan)?;
        let physical = prisma_optimizer::lower_physical(
            &optimized,
            &*self.dictionary,
            self.executor.physical_config(),
            &mut trace,
        )?;
        let mut out = String::new();
        out.push_str("== unoptimized ==\n");
        out.push_str(&plan.to_string());
        out.push_str("== optimized ==\n");
        out.push_str(&optimized.to_string());
        out.push_str("== physical ==\n");
        out.push_str(&physical.to_string());
        out.push_str("== knowledge-base rule firings ==\n");
        for f in &trace.fired {
            out.push_str(f);
            out.push('\n');
        }
        Ok((optimized, out))
    }

    /// Execute a PRISMAlog query: translate to algebra when possible
    /// (distributed execution); fall back to the set-oriented semi-naive
    /// evaluator for mutually-recursive programs.
    pub fn execute_prismalog(&self, program: &str, query: &str) -> Result<Relation> {
        let program = plog::parse_program(program)?;
        let query = plog::parse_query(query)?;
        match plog::compile_query(&program, &query, &*self.dictionary) {
            Ok(plan) => {
                let (rows, _) = self.query(&plan)?;
                Ok(rows)
            }
            Err(PrismaError::UnsafeRule(_)) => {
                // Mutual/non-linear recursion: evaluate centrally over
                // materialized EDB relations.
                let txn = self.txns.begin();
                let mut edb: HashMap<String, Relation> = HashMap::new();
                let defined = program.defined_predicates();
                for rule in &program.rules {
                    for atom in rule.body_atoms() {
                        if !defined.contains(&atom.pred) && !edb.contains_key(&atom.pred) {
                            self.locks.acquire(txn, &atom.pred, LockMode::Shared)?;
                            edb.insert(atom.pred.clone(), self.executor.materialize(&atom.pred)?);
                        }
                    }
                }
                let result = plog::evaluate(&program, &edb)
                    .and_then(|(idb, _)| plog::seminaive::answer_query(&query, &idb, &edb));
                let _ = self.txns.commit(txn);
                result
            }
            Err(e) => Err(e),
        }
    }

    /// Refresh a relation's statistics from its fragments: fan a
    /// [`GdhMsg::CollectStats`] out to every OFM actor and cache the
    /// [`GdhMsg::StatsReport`] replies in the dictionary, stamped with
    /// the relation's current mutation epoch. Each fragment computes its
    /// own summary from incrementally-maintained sketches — only the
    /// bounded reports cross the interconnect, never the data (the old
    /// path materialized the whole relation at the coordinator and
    /// rescanned it).
    ///
    /// Known limitation: reports reflect the **live** fragment state,
    /// including visible-but-undecided writes of transactions still in
    /// flight — refreshing concurrently with an open write transaction
    /// can capture rows that later roll back (or double-count a delta
    /// the commit then applies). Statistics are estimates and the next
    /// refresh corrects them; run refreshes outside open write
    /// transactions when exactness matters.
    pub fn refresh_stats(&self, table: &str) -> Result<()> {
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::CollectStats {
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::StatsReport {
                    fragment, stats, ..
                } => {
                    self.dictionary.put_fragment_stats(table, fragment, *stats);
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// EXPLAIN ANALYZE: everything [`GlobalDataHandler::explain_sql`]
    /// prints, plus each operator's **estimated vs. actual** cardinality.
    /// Actuals come from evaluating every subtree against a snapshot of
    /// the scanned relations through the reference evaluator — a debug
    /// path, priced accordingly.
    pub fn explain_analyze_sql(&self, sql: &str) -> Result<String> {
        let (optimized, mut out) = self.explain_inner(sql)?;
        let mut db: HashMap<String, Relation> = HashMap::new();
        for name in optimized.scanned_relations() {
            if !db.contains_key(&name) {
                db.insert(name.clone(), self.executor.materialize(&name)?);
            }
        }
        out.push_str("== estimated vs actual ==\n");
        let mut lines: Vec<String> = Vec::new();
        analyze_node(&optimized, 0, &self.dictionary, &mut db, &mut lines)?;
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }

    /// Snapshot a relation (all fragments unioned) — test/debug helper.
    pub fn snapshot(&self, table: &str) -> Result<Relation> {
        self.executor.materialize(table)
    }
}

/// EXPLAIN ANALYZE's estimated-vs-actual walk: every operator is
/// evaluated **exactly once** — children materialize first (bottom-up),
/// then the parent runs over the spliced child results behind synthetic
/// scan names, so a deep plan costs one evaluation per node instead of
/// one per node per ancestor. Recursive operators (Closure/Fixpoint)
/// evaluate whole so their fixpoint bindings stay intact; their children
/// are not annotated. Returns the node's materialized result for the
/// caller (its parent) to splice.
fn analyze_node(
    node: &LogicalPlan,
    depth: usize,
    dict: &DataDictionary,
    db: &mut HashMap<String, Relation>,
    lines: &mut Vec<String>,
) -> Result<Relation> {
    let est = prisma_optimizer::estimate_rows(node, dict);
    let label = prisma_optimizer::op_label(node);
    let freshness = match node {
        LogicalPlan::Scan { relation, .. } => {
            format!(" [stats {}]", StatsSource::stats_freshness(dict, relation))
        }
        _ => String::new(),
    };
    // Reserve this node's line so parents print above their children.
    let slot = lines.len();
    lines.push(String::new());
    let actual = match node {
        LogicalPlan::Scan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::Closure { .. }
        | LogicalPlan::Fixpoint { .. } => prisma_relalg::eval(node, db)?,
        _ => {
            let mut spliced = Vec::new();
            for (i, child) in node.children().into_iter().enumerate() {
                let rel = analyze_node(child, depth + 1, dict, db, lines)?;
                let name = format!("__analyze{depth}_{i}");
                spliced.push(LogicalPlan::scan(&name, rel.schema().clone()));
                db.insert(name, rel);
            }
            let names: Vec<String> = spliced
                .iter()
                .map(|s| match s {
                    LogicalPlan::Scan { relation, .. } => relation.clone(),
                    _ => unreachable!("spliced children are scans"),
                })
                .collect();
            let mut it = spliced.into_iter();
            let mut next = || it.next().expect("children arity matches");
            let rebuilt = match node.clone() {
                LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                    input: Box::new(next()),
                    predicate,
                },
                LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
                    input: Box::new(next()),
                    exprs,
                    schema,
                },
                LogicalPlan::Join {
                    kind, on, residual, ..
                } => LogicalPlan::Join {
                    left: Box::new(next()),
                    right: Box::new(next()),
                    kind,
                    on,
                    residual,
                },
                LogicalPlan::Union { all, .. } => LogicalPlan::Union {
                    left: Box::new(next()),
                    right: Box::new(next()),
                    all,
                },
                LogicalPlan::Difference { .. } => LogicalPlan::Difference {
                    left: Box::new(next()),
                    right: Box::new(next()),
                },
                LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
                    input: Box::new(next()),
                },
                LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                    input: Box::new(next()),
                    group_by,
                    aggs,
                },
                LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                    input: Box::new(next()),
                    keys,
                },
                LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                    input: Box::new(next()),
                    n,
                },
                leaf => leaf,
            };
            let rel = prisma_relalg::eval(&rebuilt, db)?;
            for name in names {
                db.remove(&name);
            }
            rel
        }
    };
    lines[slot] = format!(
        "{}{label}: est {est:.0} actual {}{freshness}",
        "  ".repeat(depth),
        actual.len(),
    );
    Ok(actual)
}
