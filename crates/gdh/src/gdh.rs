//! The Global Data Handler façade: parsers + optimizer + transactions +
//! parallel executor, supervising the OFM actors.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use prisma_multicomputer::{CostModel, Topology};
use prisma_ofm::{Ofm, OfmKind};
use prisma_optimizer::{Optimizer, OptimizerConfig, TableStats};
use prisma_poolx::{PoolRuntime, TrafficLedger};
use prisma_prismalog as plog;
use prisma_relalg::{LogicalPlan, Relation};
use prisma_sqlfe::{self as sqlfe, PlannedStatement};
use prisma_stable::DiskProfile;
use prisma_storage::expr::ScalarExpr;
use prisma_types::{
    MachineConfig, PeId, PrismaError, Result, Schema, Tuple, TxnId,
};

use crate::allocation::AllocationPolicy;
use crate::dictionary::{DataDictionary, FragmentHandle, RelationInfo};
use crate::exec::{ExecMetrics, ParallelExecutor};
use crate::locks::{LockManager, LockMode};
use crate::message::{GdhMsg, OfmActor};
use crate::txn::TransactionManager;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A query result.
    Rows(Relation),
    /// DML row count.
    Affected(usize),
    /// DDL success.
    Done,
}

impl QueryOutcome {
    /// The relation, for callers that know they ran a query.
    pub fn rows(self) -> Result<Relation> {
        match self {
            QueryOutcome::Rows(r) => Ok(r),
            other => Err(PrismaError::Execution(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// The affected-row count, for callers that know they ran DML.
    pub fn affected(self) -> Result<usize> {
        match self {
            QueryOutcome::Affected(n) => Ok(n),
            other => Err(PrismaError::Execution(format!(
                "expected a row count, got {other:?}"
            ))),
        }
    }
}

/// Receive one reply against a **deadline shared by the whole fan-out**:
/// each reply narrows the remaining wait instead of resetting the clock,
/// so N outstanding replies are bounded by one reply timeout total — a
/// slow-trickling participant can no longer stall N×timeout before the
/// error surfaces.
fn recv_by(
    mailbox: &prisma_poolx::ExternalMailbox<GdhMsg>,
    deadline: Instant,
) -> Result<GdhMsg> {
    mailbox.recv_timeout(deadline.saturating_duration_since(Instant::now()))
}

/// The GDH: the supervisor of the PRISMA DBMS (paper §2.2).
pub struct GlobalDataHandler {
    config: MachineConfig,
    runtime: Arc<PoolRuntime<GdhMsg>>,
    dictionary: Arc<DataDictionary>,
    locks: Arc<LockManager>,
    txns: TransactionManager,
    executor: ParallelExecutor,
    topology: Topology,
    allocation: AllocationPolicy,
    optimizer_config: OptimizerConfig,
}

impl GlobalDataHandler {
    /// Boot the DBMS on a simulated machine: start the POOL-X runtime with
    /// one worker per PE, create stable-storage services on disk PEs, and
    /// stand up the supervisor components.
    pub fn boot(
        config: MachineConfig,
        allocation: AllocationPolicy,
        disk_profile: DiskProfile,
    ) -> Result<GlobalDataHandler> {
        config.validate()?;
        let cost = CostModel::new(&config)?;
        let topology = Topology::build(&config)?;
        let ledger = Arc::new(TrafficLedger::new(cost));
        let runtime: Arc<PoolRuntime<GdhMsg>> = PoolRuntime::start(config.num_pes, ledger);
        let dictionary = Arc::new(DataDictionary::new(config.clone(), disk_profile));
        let locks = Arc::new(LockManager::new());
        let coordinator_log = dictionary.stable_for(PeId(0)).wal;
        let txns = TransactionManager::new(runtime.clone(), locks.clone(), coordinator_log)
            .with_reply_timeout(config.reply_timeout());
        let executor = ParallelExecutor::new(runtime.clone(), dictionary.clone());
        Ok(GlobalDataHandler {
            config,
            runtime,
            dictionary,
            locks,
            txns,
            executor,
            topology,
            allocation,
            optimizer_config: OptimizerConfig::default(),
        })
    }

    /// Boot with paper defaults (64-PE mesh, load-balanced allocation,
    /// instant disks — benches override the profile).
    pub fn boot_default() -> Result<GlobalDataHandler> {
        GlobalDataHandler::boot(
            MachineConfig::paper_prototype(),
            AllocationPolicy::LoadBalanced,
            DiskProfile::instant(),
        )
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The data dictionary.
    pub fn dictionary(&self) -> &Arc<DataDictionary> {
        &self.dictionary
    }

    /// Communication ledger of the underlying runtime.
    pub fn ledger(&self) -> &Arc<TrafficLedger> {
        self.runtime.ledger()
    }

    /// Override the optimizer configuration (E9 ablation).
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        self.optimizer_config = cfg;
    }

    /// Override the physical-lowering tunables (broadcast-vs-partition
    /// threshold); EXPLAIN and execution always share this config.
    pub fn set_physical_config(&mut self, cfg: prisma_optimizer::PhysicalConfig) {
        self.executor.set_physical_config(cfg);
    }

    /// Toggle streamed batch shipping on the parallel executor. `false`
    /// selects the materialized baseline — OFMs run their subplan to
    /// completion before the first ship — kept only so the E6 experiment
    /// can measure what the overlap buys.
    pub fn set_streaming(&mut self, streaming: bool) {
        self.executor.set_streaming(streaming);
    }

    /// Whether fragment replies currently stream per batch.
    pub fn executor_streaming(&self) -> bool {
        self.executor.streaming()
    }

    /// Shut the machine down (drains actor mailboxes).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
    }

    // ---------------- DDL ----------------

    /// Create a relation with `frag_count` fragments, hash-fragmented on
    /// `frag_column` (None = round-robin), placed by the allocation
    /// policy; `co_locate_with` anchors locality-aware placement.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        frag_column: Option<usize>,
        frag_count: usize,
        co_locate_with: Option<&str>,
    ) -> Result<()> {
        if frag_count == 0 {
            return Err(PrismaError::Config("frag_count must be > 0".into()));
        }
        let anchor: Option<Vec<PeId>> = match co_locate_with {
            Some(other) => Some(self.dictionary.relation(other)?.pes()),
            None => None,
        };
        let load = self.dictionary.fragments_per_pe();
        let pes = self
            .allocation
            .place(frag_count, &load, &self.topology, anchor.as_deref());
        let mut fragments = Vec::with_capacity(frag_count);
        for pe in pes {
            let id = self.dictionary.alloc_fragment_id();
            let stable = self.dictionary.stable_for(pe);
            let ofm = Ofm::new(
                id,
                name,
                schema.clone(),
                OfmKind::Persistent {
                    wal: stable.wal,
                    checkpoints: stable.checkpoints,
                },
            );
            let actor = self.runtime.spawn(pe, Box::new(OfmActor::new(ofm)))?;
            fragments.push(FragmentHandle { id, pe, actor });
        }
        self.dictionary.register(
            name,
            RelationInfo {
                schema,
                frag_column,
                fragments,
            },
        )?;
        Ok(())
    }

    /// Drop a relation and its OFM actors.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let _info = self.dictionary.unregister(name)?;
        // Actors are leaked-but-idle in this prototype (killing requires a
        // process context); their fragments become unreachable.
        Ok(())
    }

    /// Create an index on every fragment.
    pub fn create_index(&self, table: &str, column: usize, hash: bool) -> Result<()> {
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::CreateIndex {
                    column,
                    hash,
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::Ack { result, .. } => {
                    result?;
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Checkpoint every fragment of a relation; returns total simulated
    /// disk ns.
    pub fn checkpoint(&self, table: &str) -> Result<u64> {
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::Checkpoint {
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut total = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            if let GdhMsg::Ack { result, .. } = recv_by(&mailbox, deadline)? {
                total += result?;
            }
        }
        Ok(total)
    }

    /// Recover a relation from stable storage: fresh OFMs rebuilt from
    /// checkpoint + committed WAL suffix replace the old actors (paper
    /// §3.2's "automatic recovery upon system failures").
    pub fn recover_relation(&self, name: &str) -> Result<()> {
        let info = self.dictionary.relation(name)?;
        let mut new_fragments = Vec::with_capacity(info.fragments.len());
        for frag in &info.fragments {
            let stable = self.dictionary.stable_for(frag.pe);
            let ofm = Ofm::recover(
                frag.id,
                name,
                info.schema.clone(),
                stable.wal,
                stable.checkpoints,
            )?;
            let actor = self.runtime.spawn(frag.pe, Box::new(OfmActor::new(ofm)))?;
            new_fragments.push(FragmentHandle {
                id: frag.id,
                pe: frag.pe,
                actor,
            });
        }
        self.dictionary.unregister(name)?;
        self.dictionary.register(
            name,
            RelationInfo {
                schema: info.schema,
                frag_column: info.frag_column,
                fragments: new_fragments,
            },
        )?;
        Ok(())
    }

    // ---------------- transactions & DML ----------------

    /// Begin an explicit transaction.
    pub fn begin(&self) -> TxnId {
        self.txns.begin()
    }

    /// Commit an explicit transaction (2PC).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.txns.commit(txn).map(|_| ())
    }

    /// Abort an explicit transaction.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.txns.abort(txn)
    }

    /// Insert rows under `txn` (routes each row to its fragment).
    pub fn insert(&self, txn: TxnId, table: &str, rows: Vec<Tuple>) -> Result<usize> {
        let info = self.dictionary.relation(table)?;
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        // Route rows to fragments.
        let mut per_frag: HashMap<usize, Vec<Tuple>> = HashMap::new();
        for row in rows {
            info.schema.check_tuple(row.values())?;
            per_frag
                .entry(info.route(row.values()))
                .or_default()
                .push(row);
        }
        let mailbox = self.runtime.external_mailbox();
        let mut outstanding = 0;
        for (frag_idx, rows) in per_frag {
            let frag = &info.fragments[frag_idx];
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::Insert {
                    txn,
                    rows,
                    reply_to: mailbox.id,
                    tag: frag_idx as u64,
                },
            )?;
            outstanding += 1;
        }
        let mut n = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..outstanding {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { result, .. } => n += result?,
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        self.dictionary.bump_rows(table, n as i64);
        Ok(n)
    }

    /// Delete matching rows under `txn` (broadcast to all fragments).
    pub fn delete(
        &self,
        txn: TxnId,
        table: &str,
        predicate: Option<ScalarExpr>,
    ) -> Result<usize> {
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::DeleteWhere {
                    txn,
                    predicate: predicate.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut n = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { result, .. } => n += result?,
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        self.dictionary.bump_rows(table, -(n as i64));
        Ok(n)
    }

    /// Update matching rows under `txn`.
    pub fn update(
        &self,
        txn: TxnId,
        table: &str,
        assignments: Vec<(usize, ScalarExpr)>,
        predicate: Option<ScalarExpr>,
    ) -> Result<usize> {
        self.locks.acquire(txn, table, LockMode::Exclusive)?;
        let info = self.dictionary.relation(table)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.txns.register_participant(txn, frag.actor)?;
            self.runtime.send(
                frag.actor,
                GdhMsg::UpdateWhere {
                    txn,
                    assignments: assignments.clone(),
                    predicate: predicate.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
        }
        let mut n = 0;
        let deadline = Instant::now() + self.config.reply_timeout();
        for _ in 0..info.fragments.len() {
            match recv_by(&mailbox, deadline)? {
                GdhMsg::DmlDone { result, .. } => n += result?,
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(n)
    }

    // ---------------- queries ----------------

    /// Optimize and execute a query plan under shared locks.
    pub fn query(&self, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        let txn = self.txns.begin();
        let result = self.query_in(txn, plan);
        match &result {
            Ok(_) => {
                let _ = self.txns.commit(txn);
            }
            Err(_) => {
                let _ = self.txns.abort(txn);
            }
        }
        result
    }

    fn query_in(&self, txn: TxnId, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        for rel in plan.scanned_relations() {
            self.locks.acquire(txn, &rel, LockMode::Shared)?;
        }
        let optimizer = Optimizer::new(&*self.dictionary).with_config(self.optimizer_config);
        let (optimized, _trace) = optimizer.optimize(plan)?;
        self.executor.execute(&optimized)
    }

    /// Compile and execute a SQL query, returning rows plus the parallel
    /// executor's metrics (batch/repartition counters drive E2/E8).
    pub fn query_sql_with_metrics(&self, sql: &str) -> Result<(Relation, ExecMetrics)> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        let PlannedStatement::Query(plan) = planned else {
            return Err(PrismaError::Execution("expected a query".into()));
        };
        self.query(&plan)
    }

    /// Execute one SQL statement (auto-commit).
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutcome> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        match planned {
            PlannedStatement::Query(plan) => {
                let (rows, _) = self.query(&plan)?;
                Ok(QueryOutcome::Rows(rows))
            }
            PlannedStatement::CreateTable {
                name,
                schema,
                frag_column,
                frag_count,
            } => {
                self.create_table(&name, schema, frag_column, frag_count, None)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::DropTable(name) => {
                self.drop_table(&name)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::CreateIndex {
                table,
                column,
                hash,
            } => {
                self.create_index(&table, column, hash)?;
                Ok(QueryOutcome::Done)
            }
            PlannedStatement::Insert { table, rows } => {
                self.autocommit(|txn| self.insert(txn, &table, rows.clone()))
                    .map(QueryOutcome::Affected)
            }
            PlannedStatement::Delete { table, predicate } => {
                self.autocommit(|txn| self.delete(txn, &table, predicate.clone()))
                    .map(QueryOutcome::Affected)
            }
            PlannedStatement::Update {
                table,
                assignments,
                predicate,
            } => self
                .autocommit(|txn| {
                    self.update(txn, &table, assignments.clone(), predicate.clone())
                })
                .map(QueryOutcome::Affected),
        }
    }

    /// Execute one SQL statement inside an explicit transaction (locks
    /// held and changes visible-but-undecided until commit/abort).
    pub fn execute_sql_in(&self, txn: TxnId, sql: &str) -> Result<QueryOutcome> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        match planned {
            PlannedStatement::Query(plan) => {
                let (rows, _) = self.query_in(txn, &plan)?;
                Ok(QueryOutcome::Rows(rows))
            }
            PlannedStatement::Insert { table, rows } => {
                Ok(QueryOutcome::Affected(self.insert(txn, &table, rows)?))
            }
            PlannedStatement::Delete { table, predicate } => {
                Ok(QueryOutcome::Affected(self.delete(txn, &table, predicate)?))
            }
            PlannedStatement::Update {
                table,
                assignments,
                predicate,
            } => Ok(QueryOutcome::Affected(self.update(
                txn,
                &table,
                assignments,
                predicate,
            )?)),
            _ => Err(PrismaError::Execution(
                "DDL is not transactional; run it with execute_sql".into(),
            )),
        }
    }

    fn autocommit<T>(&self, f: impl Fn(TxnId) -> Result<T>) -> Result<T> {
        let txn = self.txns.begin();
        match f(txn) {
            Ok(v) => {
                self.txns.commit(txn)?;
                Ok(v)
            }
            Err(e) => {
                let _ = self.txns.abort(txn);
                Err(e)
            }
        }
    }

    /// EXPLAIN: the optimized logical plan, the lowered physical plan
    /// (with join-distribution and scan-projection choices), and the
    /// knowledge-base firing trace.
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        let planned = sqlfe::compile(sql, &*self.dictionary)?;
        let PlannedStatement::Query(plan) = planned else {
            return Err(PrismaError::Execution("EXPLAIN expects a query".into()));
        };
        let optimizer = Optimizer::new(&*self.dictionary).with_config(self.optimizer_config);
        let (optimized, mut trace) = optimizer.optimize(&plan)?;
        let physical = prisma_optimizer::lower_physical(
            &optimized,
            &*self.dictionary,
            self.executor.physical_config(),
            &mut trace,
        )?;
        let mut out = String::new();
        out.push_str("== unoptimized ==\n");
        out.push_str(&plan.to_string());
        out.push_str("== optimized ==\n");
        out.push_str(&optimized.to_string());
        out.push_str("== physical ==\n");
        out.push_str(&physical.to_string());
        out.push_str("== knowledge-base rule firings ==\n");
        for f in &trace.fired {
            out.push_str(f);
            out.push('\n');
        }
        Ok(out)
    }

    /// Execute a PRISMAlog query: translate to algebra when possible
    /// (distributed execution); fall back to the set-oriented semi-naive
    /// evaluator for mutually-recursive programs.
    pub fn execute_prismalog(&self, program: &str, query: &str) -> Result<Relation> {
        let program = plog::parse_program(program)?;
        let query = plog::parse_query(query)?;
        match plog::compile_query(&program, &query, &*self.dictionary) {
            Ok(plan) => {
                let (rows, _) = self.query(&plan)?;
                Ok(rows)
            }
            Err(PrismaError::UnsafeRule(_)) => {
                // Mutual/non-linear recursion: evaluate centrally over
                // materialized EDB relations.
                let txn = self.txns.begin();
                let mut edb: HashMap<String, Relation> = HashMap::new();
                let defined = program.defined_predicates();
                for rule in &program.rules {
                    for atom in rule.body_atoms() {
                        if !defined.contains(&atom.pred) && !edb.contains_key(&atom.pred) {
                            self.locks.acquire(txn, &atom.pred, LockMode::Shared)?;
                            edb.insert(atom.pred.clone(), self.executor.materialize(&atom.pred)?);
                        }
                    }
                }
                let result = plog::evaluate(&program, &edb)
                    .and_then(|(idb, _)| plog::seminaive::answer_query(&query, &idb, &edb));
                let _ = self.txns.commit(txn);
                result
            }
            Err(e) => Err(e),
        }
    }

    /// Recompute exact statistics for a relation (a data-dictionary duty;
    /// the optimizer's size estimation reads them).
    pub fn refresh_stats(&self, table: &str) -> Result<()> {
        let rel = self.executor.materialize(table)?;
        self.dictionary
            .put_stats(table, TableStats::from_relation(&rel));
        Ok(())
    }

    /// Snapshot a relation (all fragments unioned) — test/debug helper.
    pub fn snapshot(&self, table: &str) -> Result<Relation> {
        self.executor.materialize(table)
    }
}
