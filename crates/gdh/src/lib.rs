//! # prisma-gdh
//!
//! The **Global Data Handler** (paper §2.2):
//!
//! > "The PRISMA DBMS consists of centralized database systems, called
//! > One-Fragment Managers (or OFM), running under the supervision of a
//! > Global Data Handler (or GDH). The GDH contains the data dictionary,
//! > the query optimizer, the transaction manager, the concurrency control
//! > unit, and the parsers for SQL and PRISMAlog […] Besides these
//! > components, there is a recovery component and a data allocation
//! > manager."
//!
//! * [`message`] — the message protocol between the GDH and the OFM
//!   actors living on poolx PEs (message passing only, §3.1). Query
//!   results ship as **batch streams**: one `BatchChunk` per produced
//!   batch plus a terminal `StreamEnd`, so the coordinator merges while
//!   fragments still scan;
//! * [`dictionary`] — the data dictionary: relations, fragmentation
//!   schemes, fragment→PE placement, statistics;
//! * [`allocation`] — the data-allocation manager's placement policies
//!   (round-robin / load-balanced / locality-aware), compared in E8;
//! * [`locks`] — the concurrency-control unit: strict two-phase locking
//!   at relation granularity with wait-for-graph deadlock detection;
//! * [`txn`] — the transaction manager: two-phase commit across the
//!   persistent OFMs of all touched relations;
//! * [`exec`] — the parallel executor: lowered physical subplans shipped
//!   to OFM actors as batch pipelines, incoming streams merged
//!   incrementally (out-of-order chunks reassembled per stream, partial
//!   aggregates folded as batches arrive, grace-join buckets forwarded
//!   per batch), broadcast and hash-partitioned (grace) joins chosen by
//!   cardinality, and `Arc`-memoized common subexpressions;
//! * [`gdh`] — the façade combining parsers, optimizer, executor and
//!   transactions into `execute_sql` / `execute_prismalog`.

pub mod allocation;
pub mod dictionary;
pub mod exec;
pub mod gdh;
pub mod locks;
pub mod message;
pub mod txn;

pub use allocation::AllocationPolicy;
pub use dictionary::{DataDictionary, FragmentHandle, RelationInfo};
pub use exec::{ExecMetrics, ParallelExecutor};
pub use gdh::{GlobalDataHandler, QueryOutcome};
pub use locks::{LockManager, LockMode};
pub use message::GdhMsg;
pub use txn::TransactionManager;
