//! The parallel executor: fragment-parallel query processing over the OFM
//! actors (paper §2.2's intra-query parallelism), running entirely on the
//! physical batch pipeline — the reference evaluator is used only by
//! tests as the semantics oracle.
//!
//! Strategy per operator:
//!
//! * a **pushable** subtree (Select/Project chains over one relation's
//!   scan) is lowered to a physical subplan and shipped to every fragment
//!   of that relation in parallel; per-fragment batch streams are unioned
//!   at the coordinator;
//! * an equi-**join** between two pushable sides whose cardinality
//!   estimates are both large runs as a **hash-partitioned (grace) join**:
//!   every fragment partitions its side by join-key hash, and bucket pairs
//!   are joined in parallel across the fragment actors. Otherwise the
//!   smaller (materialized) side is **broadcast** to every fragment of the
//!   pushable side — the classic shared-nothing broadcast join. The choice
//!   comes from the optimizer's cardinality estimates
//!   ([`prisma_optimizer::PhysicalConfig`]);
//! * a decomposable **aggregate** (COUNT/SUM/MIN/MAX) computes partials on
//!   each fragment and merges them at the coordinator;
//! * everything else executes at the coordinator through the local batch
//!   executor over materialized children;
//! * subtrees reported by the optimizer's common-subexpression detection
//!   are **memoized** as `Arc<Relation>`: the second occurrence reuses the
//!   first result without copying it.
//!
//! Inside a fragment, Filter/Project run vectorized over columnar
//! batches ([`prisma_relalg::exec`]'s row/column duality); the wire
//! format between PEs stays row-oriented — OFMs pivot columnar batches
//! back to rows before shipping ([`prisma_ofm::Ofm::execute_physical`]),
//! so `SubplanResult` messages, the ledger's per-batch `wire_bits`
//! metering, and everything coordinator-side are unchanged.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use prisma_optimizer::cse::{detect_common_subexpressions, plan_key};
use prisma_optimizer::{lower_physical, PhysicalConfig, Trace};
use prisma_poolx::{ExternalMailbox, PoolRuntime};
use prisma_relalg::{
    execute_physical, AggExpr, AggFunc, JoinKind, JoinStrategy, LogicalPlan, PhysicalPlan,
    Relation,
};
use prisma_types::{PrismaError, Result, Schema, Tuple};

use crate::dictionary::DataDictionary;
use crate::message::GdhMsg;

/// Per-query execution metrics (drives E2/E8 measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecMetrics {
    /// Subplans shipped to fragment actors.
    pub fragment_tasks: u64,
    /// Tuples returned by fragment actors to the coordinator.
    pub tuples_shipped: u64,
    /// Batches returned by fragment actors to the coordinator.
    pub batches_shipped: u64,
    /// Subtree results served from the CSE memo.
    pub memo_hits: u64,
    /// Joins executed with the broadcast strategy.
    pub broadcast_joins: u64,
    /// Joins executed with the hash-partitioned (grace) strategy.
    pub partitioned_joins: u64,
    /// Repartition subplans shipped for grace joins.
    pub repartition_tasks: u64,
}

/// The fragment-parallel executor.
pub struct ParallelExecutor {
    runtime: Arc<PoolRuntime<GdhMsg>>,
    dictionary: Arc<DataDictionary>,
    physical_config: PhysicalConfig,
    reply_timeout: Duration,
}

impl ParallelExecutor {
    /// Executor over a runtime and dictionary. The reply timeout comes
    /// from the machine configuration ([`prisma_types::MachineConfig::reply_timeout`]).
    pub fn new(runtime: Arc<PoolRuntime<GdhMsg>>, dictionary: Arc<DataDictionary>) -> Self {
        let reply_timeout = dictionary.config().reply_timeout();
        ParallelExecutor {
            runtime,
            dictionary,
            physical_config: PhysicalConfig::default(),
            reply_timeout,
        }
    }

    /// The physical-lowering tunables this executor plans with (EXPLAIN
    /// must lower with the same config execution uses).
    pub fn physical_config(&self) -> PhysicalConfig {
        self.physical_config
    }

    /// Override the physical-lowering tunables (e.g. the broadcast-vs-
    /// partition threshold for the E2/E8 experiments).
    pub fn set_physical_config(&mut self, config: PhysicalConfig) {
        self.physical_config = config;
    }

    /// Execute a logical plan, returning the result and metrics.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        let cse_keys: HashSet<String> = detect_common_subexpressions(plan)
            .into_iter()
            .map(|c| c.key)
            .collect();
        let mut memo: HashMap<String, Arc<Relation>> = HashMap::new();
        let mut metrics = ExecMetrics::default();
        let rel = self.exec_node(plan, &cse_keys, &mut memo, &mut metrics)?;
        Ok((Arc::unwrap_or_clone(rel), metrics))
    }

    /// Materialize a full base relation (used by the PRISMAlog evaluator
    /// fallback and by tests).
    pub fn materialize(&self, relation: &str) -> Result<Relation> {
        let info = self.dictionary.relation(relation)?;
        let plan = LogicalPlan::scan(relation, info.schema.clone());
        let mut metrics = ExecMetrics::default();
        self.run_on_fragments(&plan, relation, &mut metrics)
            .map(Arc::unwrap_or_clone)
    }

    /// Lower a (sub)plan for shipping or local execution.
    fn lower(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        let mut trace = Trace::default();
        lower_physical(plan, &*self.dictionary, self.physical_config, &mut trace)
    }

    fn exec_node(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        let key = if cse.is_empty() {
            None
        } else {
            let k = plan_key(plan);
            if cse.contains(&k) { Some(k) } else { None }
        };
        if let Some(k) = &key {
            if let Some(hit) = memo.get(k) {
                metrics.memo_hits += 1;
                return Ok(Arc::clone(hit));
            }
        }

        let result = self.exec_inner(plan, cse, memo, metrics)?;
        if let Some(k) = key {
            memo.insert(k, Arc::clone(&result));
        }
        Ok(result)
    }

    fn exec_inner(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        // 1. Fragment-parallel pushable subtree.
        if let Some(relation) = pushable_relation(plan) {
            return self.run_on_fragments(plan, &relation, metrics);
        }
        match plan {
            // 2. Joins between distributed inputs.
            LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on,
                residual,
            } => {
                // Both sides pushable and both estimated large: grace join.
                // One lowering decides the strategy AND yields the
                // shippable side plans (projections already fused).
                if !on.is_empty() {
                    if let (Some(lrel), Some(rrel)) =
                        (pushable_relation(left), pushable_relation(right))
                    {
                        if let PhysicalPlan::HashJoin {
                            left: phys_left,
                            right: phys_right,
                            on: phys_on,
                            residual: phys_residual,
                            strategy: JoinStrategy::Partitioned,
                            ..
                        } = self.lower(plan)?
                        {
                            return self.partitioned_join(
                                *phys_left,
                                &lrel,
                                *phys_right,
                                &rrel,
                                &phys_on,
                                phys_residual,
                                metrics,
                            );
                        }
                    }
                }
                // Broadcast the materialized small side into the fragments
                // of a pushable side.
                if let Some(rel) = pushable_relation(left) {
                    metrics.broadcast_joins += 1;
                    let build = self.exec_node(right, cse, memo, metrics)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::scan("__build", build_schema)),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, metrics);
                }
                if let Some(rel) = pushable_relation(right) {
                    metrics.broadcast_joins += 1;
                    let build = self.exec_node(left, cse, memo, metrics)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: Box::new(LogicalPlan::scan("__build", build_schema)),
                        right: right.clone(),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, metrics);
                }
                // Neither side pushable: coordinator-local join.
                self.local_exec(plan, cse, memo, metrics)
            }
            // 3. Decomposable aggregates: partial per fragment + merge.
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } if pushable_relation(input).is_some() && decomposable(aggs) => {
                let relation = pushable_relation(input).expect("guard");
                let partial_plan = LogicalPlan::Aggregate {
                    input: input.clone(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                };
                let partials = self.run_on_fragments(&partial_plan, &relation, metrics)?;
                Ok(Arc::new(merge_partials(
                    &partials,
                    group_by.len(),
                    aggs,
                    plan,
                )?))
            }
            // 4. Recursive operators need their fixpoint bindings intact:
            //    materialize base relations and execute in one piece.
            LogicalPlan::Closure { .. } | LogicalPlan::Fixpoint { .. } => {
                self.local_exec(plan, cse, memo, metrics)
            }
            // 5. Everything else: execute the children through the
            //    distributed machinery, then apply this one operator at
            //    the coordinator (so a Project above a fragment-parallel
            //    Aggregate does not de-parallelize the aggregate).
            _ => self.exec_via_children(plan, cse, memo, metrics),
        }
    }

    /// Hash-partitioned (grace) join: each fragment of both relations
    /// partitions its subplan output by join-key hash; bucket pairs are
    /// then joined in parallel across the left relation's fragment actors.
    #[allow(clippy::too_many_arguments)]
    fn partitioned_join(
        &self,
        left: PhysicalPlan,
        left_rel: &str,
        right: PhysicalPlan,
        right_rel: &str,
        on: &[(usize, usize)],
        residual: Option<prisma_storage::expr::ScalarExpr>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        metrics.partitioned_joins += 1;
        let linfo = self.dictionary.relation(left_rel)?;
        let rinfo = self.dictionary.relation(right_rel)?;
        let parts = linfo.fragments.len().max(rinfo.fragments.len()).max(1);

        let lkeys: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let rkeys: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let lschema = left.output_schema()?;
        let rschema = right.output_schema()?;

        // Phase 1: fan out both sides' repartition subplans before
        // collecting either, so the two sides genuinely run in parallel.
        let (lmailbox, lcount) = self.send_repartition(&left, &linfo, &lkeys, parts, metrics)?;
        let (rmailbox, rcount) = self.send_repartition(&right, &rinfo, &rkeys, parts, metrics)?;
        let lbuckets = self.collect_partitions(&lmailbox, lcount, parts, metrics)?;
        let rbuckets = self.collect_partitions(&rmailbox, rcount, parts, metrics)?;

        // Phase 2: join bucket pairs across the left relation's actors.
        let join_schema = lschema.join(&rschema);
        let site_plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                relation: "__part_l".into(),
                schema: lschema.clone(),
                projection: None,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                relation: "__part_r".into(),
                schema: rschema.clone(),
                projection: None,
            }),
            kind: JoinKind::Inner,
            on: on.to_vec(),
            residual,
            strategy: JoinStrategy::Partitioned,
        };
        let mailbox = self.runtime.external_mailbox();
        let mut outstanding = 0;
        for (j, (lb, rb)) in lbuckets.into_iter().zip(rbuckets).enumerate() {
            if lb.is_empty() || rb.is_empty() {
                continue; // an empty side joins to nothing
            }
            let mut extra = HashMap::new();
            extra.insert(
                "__part_l".to_owned(),
                Arc::new(Relation::new(lschema.clone(), lb)),
            );
            extra.insert(
                "__part_r".to_owned(),
                Arc::new(Relation::new(rschema.clone(), rb)),
            );
            let site = &linfo.fragments[j % linfo.fragments.len()];
            self.runtime.send(
                site.actor,
                GdhMsg::RunSubplan {
                    plan: Box::new(site_plan.clone()),
                    extra,
                    reply_to: mailbox.id,
                    tag: j as u64,
                },
            )?;
            metrics.fragment_tasks += 1;
            outstanding += 1;
        }
        let mut out = Vec::new();
        for _ in 0..outstanding {
            match mailbox.recv_timeout(self.reply_timeout)? {
                GdhMsg::SubplanResult { result, .. } => {
                    for batch in result? {
                        metrics.batches_shipped += 1;
                        metrics.tuples_shipped += batch.len() as u64;
                        out.extend(batch.into_tuples());
                    }
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(Arc::new(Relation::new(join_schema, out)))
    }

    /// Ship one side's repartition subplan to every fragment of its
    /// relation; replies arrive on the returned mailbox.
    fn send_repartition(
        &self,
        physical: &PhysicalPlan,
        info: &crate::dictionary::RelationInfo,
        key_cols: &[usize],
        parts: usize,
        metrics: &mut ExecMetrics,
    ) -> Result<(ExternalMailbox<GdhMsg>, usize)> {
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::Repartition {
                    plan: Box::new(physical.clone()),
                    key_cols: key_cols.to_vec(),
                    parts,
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
            metrics.repartition_tasks += 1;
        }
        Ok((mailbox, info.fragments.len()))
    }

    /// Collect `count` repartition replies, merging per-fragment buckets
    /// bucket-wise.
    fn collect_partitions(
        &self,
        mailbox: &ExternalMailbox<GdhMsg>,
        count: usize,
        parts: usize,
        metrics: &mut ExecMetrics,
    ) -> Result<Vec<Vec<Tuple>>> {
        let mut merged: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
        for _ in 0..count {
            match mailbox.recv_timeout(self.reply_timeout)? {
                GdhMsg::PartitionResult { result, .. } => {
                    for (bucket, rows) in merged.iter_mut().zip(result?) {
                        metrics.tuples_shipped += rows.len() as u64;
                        bucket.extend(rows);
                    }
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(merged)
    }

    /// Execute each child distributed, splice the results in as
    /// `Arc`-shared provider entries behind synthetic scan names, and run
    /// only this node through the local batch executor (no copies of the
    /// child results are made).
    fn exec_via_children(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        let mut provider: HashMap<String, Arc<Relation>> = HashMap::new();
        let mut spliced = Vec::new();
        for (i, child) in plan.children().into_iter().enumerate() {
            let rel = self.exec_node(child, cse, memo, metrics)?;
            let name = format!("__child{i}");
            spliced.push(LogicalPlan::scan(&name, rel.schema().clone()));
            provider.insert(name, rel);
        }
        let mut it = spliced.into_iter();
        let mut next = || it.next().expect("children arity matches");
        let rebuilt = match plan.clone() {
            LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                input: Box::new(next()),
                predicate,
            },
            LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
                input: Box::new(next()),
                exprs,
                schema,
            },
            LogicalPlan::Join {
                kind, on, residual, ..
            } => LogicalPlan::Join {
                left: Box::new(next()),
                right: Box::new(next()),
                kind,
                on,
                residual,
            },
            LogicalPlan::Union { all, .. } => LogicalPlan::Union {
                left: Box::new(next()),
                right: Box::new(next()),
                all,
            },
            LogicalPlan::Difference { .. } => LogicalPlan::Difference {
                left: Box::new(next()),
                right: Box::new(next()),
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
                input: Box::new(next()),
            },
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: Box::new(next()),
                group_by,
                aggs,
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(next()),
                keys,
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                input: Box::new(next()),
                n,
            },
            leaf => leaf,
        };
        Ok(Arc::new(execute_physical(&self.lower(&rebuilt)?, &provider)?))
    }

    /// Execute `plan` at the coordinator through the batch executor,
    /// materializing each free base relation via the distributed machinery
    /// into an `Arc`-shared provider (fixpoint bindings stay intact).
    fn local_exec(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        let mut provider: HashMap<String, Arc<Relation>> = HashMap::new();
        for name in plan.scanned_relations() {
            if provider.contains_key(&name) {
                continue;
            }
            let info = self.dictionary.relation(&name)?;
            let scan = LogicalPlan::scan(&name, info.schema.clone());
            let rel = self.exec_node(&scan, cse, memo, metrics)?;
            provider.insert(name, rel);
        }
        Ok(Arc::new(execute_physical(&self.lower(plan)?, &provider)?))
    }

    fn run_on_fragments(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        self.run_on_fragments_with(plan, relation, HashMap::new(), metrics)
    }

    /// Lower `plan` and ship it (+ `extra` relations) to every fragment
    /// actor of `relation`, unioning the replied batch streams.
    fn run_on_fragments_with(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        extra: HashMap<String, Arc<Relation>>,
        metrics: &mut ExecMetrics,
    ) -> Result<Arc<Relation>> {
        let info = self.dictionary.relation(relation)?;
        let physical = self.lower(plan)?;
        let schema = physical.output_schema()?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::RunSubplan {
                    plan: Box::new(physical.clone()),
                    extra: extra.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
            metrics.fragment_tasks += 1;
        }
        let mut out = Vec::new();
        for _ in 0..info.fragments.len() {
            match mailbox.recv_timeout(self.reply_timeout)? {
                GdhMsg::SubplanResult { result, .. } => {
                    for batch in result? {
                        metrics.batches_shipped += 1;
                        metrics.tuples_shipped += batch.len() as u64;
                        out.extend(batch.into_tuples());
                    }
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(Arc::new(Relation::new(schema, out)))
    }
}

/// If `plan` is a Select/Project chain over exactly one base-relation
/// scan, return that relation's name.
///
/// Distinct is excluded (local dedup ≠ global dedup under bag semantics is
/// fine, but a parent expecting set semantics must dedup globally — the
/// coordinator path handles that). Closure is excluded: the closure of a
/// union of fragments is not the union of per-fragment closures.
fn pushable_relation(plan: &LogicalPlan) -> Option<String> {
    match plan {
        LogicalPlan::Scan { relation, .. } => {
            if relation.starts_with("__") || relation.starts_with('Δ') {
                None // executor-internal or fixpoint binding
            } else {
                Some(relation.clone())
            }
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
            pushable_relation(input)
        }
        _ => None,
    }
}

fn decomposable(aggs: &[AggExpr]) -> bool {
    aggs.iter().all(|a| {
        matches!(
            a.func,
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max
        )
    })
}

/// Merge per-fragment partial aggregates: COUNT→SUM, SUM→SUM, MIN→MIN,
/// MAX→MAX, re-grouped on the same keys (runs through the local batch
/// executor).
fn merge_partials(
    partials: &Relation,
    num_group_cols: usize,
    aggs: &[AggExpr],
    original: &LogicalPlan,
) -> Result<Relation> {
    let final_schema = original.output_schema()?;
    let merge_aggs: Vec<AggExpr> = aggs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let func = match a.func {
                AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => unreachable!("guarded by decomposable()"),
            };
            AggExpr::new(func, num_group_cols + i, a.name.clone())
        })
        .collect();
    let merge_plan = PhysicalPlan::HashAggregate {
        input: Box::new(PhysicalPlan::Values {
            schema: partials.schema().clone(),
            rows: partials.tuples().to_vec(),
        }),
        group_by: (0..num_group_cols).collect(),
        aggs: merge_aggs,
    };
    let provider: HashMap<String, Arc<Relation>> = HashMap::new();
    let merged = execute_physical(&merge_plan, &provider)?;
    // COUNT over zero fragments of matching rows yields NULL from the SUM
    // merge for global (ungrouped) aggregates; coerce back to 0.
    if num_group_cols == 0 && merged.len() == 1 {
        let row = &merged.tuples()[0];
        let fixed: Vec<prisma_types::Value> = row
            .values()
            .iter()
            .zip(aggs)
            .map(|(v, a)| {
                if v.is_null()
                    && matches!(a.func, AggFunc::Count | AggFunc::CountStar)
                {
                    prisma_types::Value::Int(0)
                } else {
                    v.clone()
                }
            })
            .collect();
        return Ok(Relation::new(
            final_schema,
            vec![prisma_types::Tuple::new(fixed)],
        ));
    }
    Ok(Relation::new(final_schema, merged.into_tuples()))
}

/// Schema helper re-exported for the facade.
pub fn scan_of(dictionary: &DataDictionary, relation: &str) -> Result<LogicalPlan> {
    let info = dictionary.relation(relation)?;
    Ok(LogicalPlan::scan(relation, info.schema))
}

#[allow(dead_code)]
fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<GdhMsg>();
    is_send::<Schema>();
}
