//! The parallel executor: fragment-parallel query processing over the OFM
//! actors (paper §2.2's intra-query parallelism).
//!
//! Strategy per operator:
//!
//! * a **pushable** subtree (Select/Project chains over one relation's
//!   scan) runs on every fragment of that relation in parallel; results
//!   are unioned at the coordinator;
//! * an equi-**join** broadcasts the smaller (materialized) side to every
//!   fragment of the pushable side and joins locally in parallel — the
//!   classic shared-nothing broadcast join; if neither side is pushable
//!   both are materialized and joined at the coordinator;
//! * a decomposable **aggregate** (COUNT/SUM/MIN/MAX) computes partials on
//!   each fragment and merges them at the coordinator;
//! * everything else evaluates at the coordinator over materialized
//!   children (correct by construction: the reference evaluator is the
//!   semantics);
//! * subtrees reported by the optimizer's common-subexpression detection
//!   are **memoized**: the second occurrence reuses the first result.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use prisma_optimizer::cse::{detect_common_subexpressions, plan_key};
use prisma_poolx::PoolRuntime;
use prisma_relalg::{eval, AggExpr, AggFunc, JoinKind, LogicalPlan, Relation};
use prisma_types::{PrismaError, Result, Schema};

use crate::dictionary::DataDictionary;
use crate::message::GdhMsg;

const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Per-query execution metrics (drives E2/E8 measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecMetrics {
    /// Subplans shipped to fragment actors.
    pub fragment_tasks: u64,
    /// Tuples returned by fragment actors to the coordinator.
    pub tuples_shipped: u64,
    /// Subtree results served from the CSE memo.
    pub memo_hits: u64,
}

/// The fragment-parallel executor.
pub struct ParallelExecutor {
    runtime: Arc<PoolRuntime<GdhMsg>>,
    dictionary: Arc<DataDictionary>,
}

impl ParallelExecutor {
    /// Executor over a runtime and dictionary.
    pub fn new(runtime: Arc<PoolRuntime<GdhMsg>>, dictionary: Arc<DataDictionary>) -> Self {
        ParallelExecutor {
            runtime,
            dictionary,
        }
    }

    /// Execute a logical plan, returning the result and metrics.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        let cse_keys: HashSet<String> = detect_common_subexpressions(plan)
            .into_iter()
            .map(|c| c.key)
            .collect();
        let mut memo: HashMap<String, Relation> = HashMap::new();
        let mut metrics = ExecMetrics::default();
        let rel = self.exec_node(plan, &cse_keys, &mut memo, &mut metrics)?;
        Ok((rel, metrics))
    }

    /// Materialize a full base relation (used by the PRISMAlog evaluator
    /// fallback and by tests).
    pub fn materialize(&self, relation: &str) -> Result<Relation> {
        let info = self.dictionary.relation(relation)?;
        let plan = LogicalPlan::scan(relation, info.schema.clone());
        let mut metrics = ExecMetrics::default();
        self.run_on_fragments(&plan, relation, &mut metrics)
    }

    fn exec_node(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Relation>,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        let key = if cse.is_empty() {
            None
        } else {
            let k = plan_key(plan);
            if cse.contains(&k) { Some(k) } else { None }
        };
        if let Some(k) = &key {
            if let Some(hit) = memo.get(k) {
                metrics.memo_hits += 1;
                return Ok(hit.clone());
            }
        }

        let result = self.exec_inner(plan, cse, memo, metrics)?;
        if let Some(k) = key {
            memo.insert(k, result.clone());
        }
        Ok(result)
    }

    fn exec_inner(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Relation>,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        // 1. Fragment-parallel pushable subtree.
        if let Some(relation) = pushable_relation(plan) {
            return self.run_on_fragments(plan, &relation, metrics);
        }
        match plan {
            // 2. Joins: broadcast the materialized small side into the
            //    fragments of a pushable side.
            LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on,
                residual,
            } => {
                if let Some(rel) = pushable_relation(left) {
                    let build = self.exec_node(right, cse, memo, metrics)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::scan("__build", build_schema)),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, metrics);
                }
                if let Some(rel) = pushable_relation(right) {
                    let build = self.exec_node(left, cse, memo, metrics)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: Box::new(LogicalPlan::scan("__build", build_schema)),
                        right: right.clone(),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, metrics);
                }
                // Neither side pushable: coordinator-local join.
                self.local_eval(plan, cse, memo, metrics)
            }
            // 3. Decomposable aggregates: partial per fragment + merge.
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } if pushable_relation(input).is_some() && decomposable(aggs) => {
                let relation = pushable_relation(input).expect("guard");
                let partial_plan = LogicalPlan::Aggregate {
                    input: input.clone(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                };
                let partials = self.run_on_fragments(&partial_plan, &relation, metrics)?;
                merge_partials(partials, group_by.len(), aggs, plan)
            }
            // 4. Recursive operators need their fixpoint bindings intact:
            //    materialize base relations and evaluate in one piece.
            LogicalPlan::Closure { .. } | LogicalPlan::Fixpoint { .. } => {
                self.local_eval(plan, cse, memo, metrics)
            }
            // 5. Everything else: execute the children through the
            //    distributed machinery, then apply this one operator at
            //    the coordinator (so a Project above a fragment-parallel
            //    Aggregate does not de-parallelize the aggregate).
            _ => self.exec_via_children(plan, cse, memo, metrics),
        }
    }

    /// Execute each child distributed, splice the results in as literal
    /// rows, and evaluate only this node locally.
    fn exec_via_children(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Relation>,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        let mut materialized = Vec::new();
        for child in plan.children() {
            let rel = self.exec_node(child, cse, memo, metrics)?;
            materialized.push(LogicalPlan::Values {
                schema: rel.schema().clone(),
                rows: rel.into_tuples(),
            });
        }
        let mut it = materialized.into_iter();
        let mut next = || it.next().expect("children arity matches");
        let rebuilt = match plan.clone() {
            LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                input: Box::new(next()),
                predicate,
            },
            LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
                input: Box::new(next()),
                exprs,
                schema,
            },
            LogicalPlan::Join {
                kind, on, residual, ..
            } => LogicalPlan::Join {
                left: Box::new(next()),
                right: Box::new(next()),
                kind,
                on,
                residual,
            },
            LogicalPlan::Union { all, .. } => LogicalPlan::Union {
                left: Box::new(next()),
                right: Box::new(next()),
                all,
            },
            LogicalPlan::Difference { .. } => LogicalPlan::Difference {
                left: Box::new(next()),
                right: Box::new(next()),
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
                input: Box::new(next()),
            },
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: Box::new(next()),
                group_by,
                aggs,
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(next()),
                keys,
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                input: Box::new(next()),
                n,
            },
            leaf => leaf,
        };
        let provider: HashMap<String, Relation> = HashMap::new();
        eval(&rebuilt, &provider)
    }

    /// Evaluate `plan` at the coordinator, materializing each child via
    /// the distributed machinery and splicing it in as literal rows.
    fn local_eval(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Relation>,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        // Fixpoints need their Scan bindings intact; materialize only the
        // *free* scans (base relations) into a provider map and evaluate.
        let mut provider: HashMap<String, Relation> = HashMap::new();
        for name in plan.scanned_relations() {
            if provider.contains_key(&name) {
                continue;
            }
            let info = self.dictionary.relation(&name)?;
            let scan = LogicalPlan::scan(&name, info.schema.clone());
            let rel = self.exec_node(&scan, cse, memo, metrics)?;
            provider.insert(name, rel);
        }
        eval(plan, &provider)
    }

    fn run_on_fragments(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        self.run_on_fragments_with(plan, relation, HashMap::new(), metrics)
    }

    /// Ship `plan` (+ `extra` relations) to every fragment actor of
    /// `relation` and union the replies.
    fn run_on_fragments_with(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        extra: HashMap<String, Relation>,
        metrics: &mut ExecMetrics,
    ) -> Result<Relation> {
        let info = self.dictionary.relation(relation)?;
        let mailbox = self.runtime.external_mailbox();
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::RunSubplan {
                    plan: Box::new(plan.clone()),
                    extra: extra.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
            metrics.fragment_tasks += 1;
        }
        let schema = plan.output_schema()?;
        let mut out = Relation::empty(schema);
        for _ in 0..info.fragments.len() {
            match mailbox.recv_timeout(REPLY_TIMEOUT)? {
                GdhMsg::SubplanResult { result, .. } => {
                    let rel = result?;
                    metrics.tuples_shipped += rel.len() as u64;
                    for t in rel.into_tuples() {
                        out.push(t);
                    }
                }
                other => {
                    return Err(PrismaError::Execution(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// If `plan` is a Select/Project/Distinct-free chain over exactly one
/// base-relation scan, return that relation's name.
///
/// Distinct is excluded (local dedup ≠ global dedup under bag semantics is
/// fine, but a parent expecting set semantics must dedup globally — the
/// coordinator path handles that). Closure is excluded: the closure of a
/// union of fragments is not the union of per-fragment closures.
fn pushable_relation(plan: &LogicalPlan) -> Option<String> {
    match plan {
        LogicalPlan::Scan { relation, .. } => {
            if relation.starts_with("__") || relation.starts_with('Δ') {
                None // executor-internal or fixpoint binding
            } else {
                Some(relation.clone())
            }
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
            pushable_relation(input)
        }
        _ => None,
    }
}

fn decomposable(aggs: &[AggExpr]) -> bool {
    aggs.iter().all(|a| {
        matches!(
            a.func,
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max
        )
    })
}

/// Merge per-fragment partial aggregates: COUNT→SUM, SUM→SUM, MIN→MIN,
/// MAX→MAX, re-grouped on the same keys.
fn merge_partials(
    partials: Relation,
    num_group_cols: usize,
    aggs: &[AggExpr],
    original: &LogicalPlan,
) -> Result<Relation> {
    let final_schema = original.output_schema()?;
    let merge_aggs: Vec<AggExpr> = aggs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let func = match a.func {
                AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => unreachable!("guarded by decomposable()"),
            };
            AggExpr::new(func, num_group_cols + i, a.name.clone())
        })
        .collect();
    let merge_plan = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Values {
            schema: partials.schema().clone(),
            rows: partials.tuples().to_vec(),
        }),
        group_by: (0..num_group_cols).collect(),
        aggs: merge_aggs,
    };
    let provider: HashMap<String, Relation> = HashMap::new();
    let merged = eval(&merge_plan, &provider)?;
    // COUNT over zero fragments of matching rows yields NULL from the SUM
    // merge for global (ungrouped) aggregates; coerce back to 0.
    if num_group_cols == 0 && merged.len() == 1 {
        let row = &merged.tuples()[0];
        let fixed: Vec<prisma_types::Value> = row
            .values()
            .iter()
            .zip(aggs)
            .map(|(v, a)| {
                if v.is_null()
                    && matches!(a.func, AggFunc::Count | AggFunc::CountStar)
                {
                    prisma_types::Value::Int(0)
                } else {
                    v.clone()
                }
            })
            .collect();
        return Ok(Relation::new(
            final_schema,
            vec![prisma_types::Tuple::new(fixed)],
        ));
    }
    Ok(Relation::new(final_schema, merged.into_tuples()))
}

/// Schema helper re-exported for the facade.
pub fn scan_of(dictionary: &DataDictionary, relation: &str) -> Result<LogicalPlan> {
    let info = dictionary.relation(relation)?;
    Ok(LogicalPlan::scan(relation, info.schema))
}

#[allow(dead_code)]
fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<GdhMsg>();
    is_send::<Schema>();
}
