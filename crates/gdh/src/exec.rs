//! The parallel executor: fragment-parallel query processing over the OFM
//! actors (paper §2.2's intra-query parallelism), running entirely on the
//! physical batch pipeline — the reference evaluator is used only by
//! tests as the semantics oracle.
//!
//! Strategy per operator:
//!
//! * a **pushable** subtree (Select/Project chains over one relation's
//!   scan) is lowered to a physical subplan and shipped to every fragment
//!   of that relation in parallel; per-fragment batch streams are unioned
//!   at the coordinator;
//! * an equi-**join** between two pushable sides whose cardinality
//!   estimates are both large runs as a **hash-partitioned (grace) join**:
//!   every fragment partitions its side by join-key hash and streams each
//!   bucket **directly at the phase-2 site actor owning it** (the
//!   optimizer's shuffle placement map names the site per bucket); the
//!   sites reassemble the peer streams, join their buckets locally, and
//!   stream results back — the coordinator ships plans, awaits the
//!   per-site reply streams, and merges, but never relays a tuple.
//!   Otherwise the smaller (materialized) side is **broadcast** to every
//!   fragment of the pushable side — the classic shared-nothing broadcast
//!   join. The choice comes from the optimizer's cardinality estimates
//!   ([`prisma_optimizer::PhysicalConfig`]);
//! * a decomposable **aggregate** (COUNT/SUM/MIN/MAX) computes partials on
//!   each fragment and merges them at the coordinator;
//! * everything else executes at the coordinator through the local batch
//!   executor over materialized children;
//! * subtrees reported by the optimizer's common-subexpression detection
//!   are **memoized** as `Arc<Relation>`: the second occurrence reuses the
//!   first result without copying it.
//!
//! ## Pipelined exchanges
//!
//! Fragment replies are **streamed**: each OFM ships every produced batch
//! as its own [`GdhMsg::BatchChunk`] and ends the stream with a
//! [`GdhMsg::StreamEnd`], so the coordinator's merge overlaps fragment
//! scans (the time to the first merged batch is measured in
//! [`ExecMetrics::first_batch_micros`]). Union sinks append tuples as
//! chunks arrive; broadcast-join build sides assemble the same way before
//! shipping; partial-aggregate merges feed every arriving batch straight
//! into the merge accumulators; and grace-join buckets ship per produced
//! batch **fragment→fragment** ([`GdhMsg::ShuffleChunk`]) while the
//! coordinator only sees the sites' join-result streams
//! ([`ExecMetrics::shuffled_direct_bits`] meters the direct hop;
//! [`ExecMetrics::relayed_bits`] stays 0). The old coordinator-relay
//! form ([`GdhMsg::PartitionChunk`] in, re-shipped buckets out) survives
//! behind `set_streaming(false)` as the E7 baseline. Chunk order within
//! one stream is restored by
//! [`prisma_multicomputer::StreamReassembly`], which also powers the
//! in-flight-stream gauge; a lost or slow fragment surfaces as a timeout
//! naming the query, the missing fragments, and the time waited. Reply
//! waits run against a **deadline carried across the receive loop** —
//! one reply timeout bounds the whole fan-out, so a slow-trickling
//! stream cannot stall N×timeout before erroring.
//!
//! Inside a fragment, Filter/Project run vectorized over columnar
//! batches ([`prisma_relalg::exec`]'s row/column duality) — and by
//! default the wire between PEs is columnar too: OFMs encode each
//! shipped batch as a typed column block ([`prisma_types::wire`]), so
//! `BatchChunk`/`ShuffleChunk` payloads, the ledger's `wire_bits`
//! metering, and the shuffle-placement weights all see the encoded
//! block size. The receiver decodes straight back into columnar
//! batches; a frame mangled in flight fails checksum/structure
//! validation and surfaces as a stream error, never a mis-decode.
//! [`ParallelExecutor::set_columnar_wire`]`(false)` (or
//! `PRISMA_ROW_WIRE=1`) selects the historical row wire — the E11
//! baseline. The coordinator-relay `PartitionChunk` path and replica
//! log shipping stay row-oriented regardless: they are the `stream:
//! false` baseline and the recovery path, kept bit-compatible.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prisma_multicomputer::StreamReassembly;
use prisma_optimizer::cse::{detect_common_subexpressions, plan_key};
use prisma_optimizer::{lower_physical, PhysicalConfig, Trace};
use prisma_poolx::{ExternalMailbox, PoolRuntime};
use prisma_relalg::agg::Accumulator;
use prisma_ofm::{SHUFFLE_LEFT, SHUFFLE_RIGHT};
use prisma_relalg::{
    execute_physical, AggExpr, AggFunc, Batch, JoinKind, JoinStrategy, LogicalPlan, PhysicalPlan,
    Relation, ShufflePlacement,
};
use prisma_types::{FragmentId, PrismaError, QueryId, Result, Schema, Tuple, Value};

use crate::dictionary::DataDictionary;
use crate::message::{ChunkData, GdhMsg, ShuffleSide};

/// One fan-out's reply streams: each stream's correlation tag paired with
/// the fragment owing it (named in timeout/error messages).
type StreamSet = Vec<(u64, FragmentId)>;

/// A decoded reply-stream message: the two chunk kinds share one receive
/// loop ([`ParallelExecutor::receive_streams`]), differing only in the
/// chunk payload.
enum StreamMsg<T> {
    Chunk {
        query_id: QueryId,
        tag: u64,
        seq: u64,
        payload: T,
    },
    End {
        query_id: QueryId,
        tag: u64,
        seq_count: u64,
        result: Result<crate::message::StreamStats>,
    },
}

/// Per-query execution metrics (drives E2/E6/E8 measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecMetrics {
    /// Subplans shipped to fragment actors.
    pub fragment_tasks: u64,
    /// Tuples returned by fragment actors to the coordinator.
    pub tuples_shipped: u64,
    /// Batches returned by fragment actors to the coordinator.
    pub batches_shipped: u64,
    /// Subtree results served from the CSE memo.
    pub memo_hits: u64,
    /// Joins executed with the broadcast strategy.
    pub broadcast_joins: u64,
    /// Joins executed with the hash-partitioned (grace) strategy.
    pub partitioned_joins: u64,
    /// Repartition subplans shipped for grace joins.
    pub repartition_tasks: u64,
    /// Microseconds from query start until the first streamed batch
    /// reached the coordinator (0 when no fragment batch was shipped).
    /// With streaming on this is far below [`ExecMetrics::full_result_micros`]
    /// on scans big enough to span several batches — the pipelining win.
    pub first_batch_micros: u64,
    /// Microseconds from query start until the full result was merged.
    pub full_result_micros: u64,
    /// High-water mark of reply streams concurrently in flight (streams
    /// opened by a fan-out and not yet terminated by their `StreamEnd`).
    pub max_in_flight_streams: u64,
    /// Bits grace-join buckets moved **directly fragment→fragment** (the
    /// shuffle hop the coordinator never sees), as reported by the
    /// phase-2 sites.
    pub shuffled_direct_bits: u64,
    /// The largest single phase-2 site's share of
    /// [`ExecMetrics::shuffled_direct_bits`] — the shuffle-balance
    /// signal: a skewed join key concentrates this on one site, and the
    /// skew-aware placement exists to push it back down (E8 measures
    /// exactly this).
    pub max_site_shuffled_bits: u64,
    /// Bits the coordinator no longer moves thanks to the direct
    /// shuffle: every directly-shuffled bit used to cross
    /// fragment→coordinator once, and the bits of **two-sided** buckets
    /// crossed back out in the re-ship (the relay skips one-sided
    /// buckets) — computed per site, so it equals what the relay
    /// baseline's [`ExecMetrics::relayed_bits`] would meter for the
    /// same data, skew included.
    pub relay_bits_saved: u64,
    /// Bits of grace-join bucket payload the coordinator relayed
    /// (received as `PartitionChunk`s plus re-shipped to the phase-2
    /// sites) — nonzero only on the `stream: false` baseline; the direct
    /// shuffle keeps it at 0 (orchestration messages only).
    pub relayed_bits: u64,
    /// Compute workers per PE (1 = the serial baseline, no pools). A
    /// configuration echo, not a measurement — see
    /// [`prisma_types::MachineConfig::effective_ofm_workers`].
    pub pool_workers: u64,
    /// Morsels executed on the PEs' worker pools during this query
    /// (scan/filter/project pipeline morsels, join build chunks, probe
    /// splits, aggregate partials). Read PE-side from shared pool
    /// counters, never shipped — the wire protocol is unchanged.
    pub pool_morsels: u64,
    /// Morsels a pool worker stole from a sibling during this query —
    /// the work-stealing balance signal (0 under even load is fine; 0
    /// under skew means stealing is broken).
    pub pool_steals: u64,
    /// Sealed column chunks actually scanned by this query's fragment
    /// subplans (two-tier fragments only; delta rows are not counted
    /// here). Read PE-side from shared counters, never shipped.
    pub chunks_scanned: u64,
    /// Sealed column chunks skipped whole because their zone maps
    /// refuted the scan's pushed-down predicate — data never touched.
    /// `chunks_pruned / (chunks_scanned + chunks_pruned)` is the E12
    /// prune ratio.
    pub chunks_pruned: u64,
    /// Fragments whose primary died mid-query: the dictionary promoted
    /// the backup replica and the fragment's work was re-issued against
    /// it (E10's recovery signal — 0 on a fault-free run).
    pub failovers: u64,
    /// Reply streams re-requested after a mid-query fault: every
    /// [`ExecMetrics::failovers`] promotion plus re-issues to a living
    /// but starved fragment (a dropped or lost chunk). The re-requested
    /// fraction of total streams is E10's recovery-cost measure.
    pub streams_rerequested: u64,
}

/// A fan-out's recovery policy, armed on the paths that can survive a
/// mid-query PE loss (subplan fan-outs and the direct-shuffle grace
/// join). When the reply deadline fires, [`ParallelExecutor::receive_streams`]
/// retires each still-open stream, promotes its fragment's backup
/// replica if the primary's PE is dead (the dictionary flips the handle
/// and bumps its epoch), and calls `reissue` to ship the lost work at
/// the surviving handle under a fresh correlation tag — completed
/// streams are kept, so only the lost fragment's share is recomputed.
struct Failover<'a> {
    /// Re-issue one lost stream's work: `(handle, old_tag, new_tag)` —
    /// the handle to address (promoted to the backup when the primary
    /// is dead), the retired tag, and the tag the replacement stream
    /// must reply under.
    reissue: &'a mut dyn FnMut(&crate::dictionary::FragmentHandle, u64, u64) -> Result<()>,
    /// Recovery rounds left before a timeout is terminal.
    rounds: u32,
}

/// Per-query execution state threaded through the recursive walk: the
/// query's identity (stamped on every protocol message), its start time
/// (first-batch latency is measured against it), and the metrics being
/// accumulated.
struct QueryCtx {
    query_id: QueryId,
    started: Instant,
    metrics: ExecMetrics,
    /// Next shuffle-exchange id (one per partitioned join of the query).
    next_exchange: u32,
}

impl QueryCtx {
    fn fresh_exchange(&mut self) -> u32 {
        let e = self.next_exchange;
        self.next_exchange += 1;
        e
    }
}

/// The fragment-parallel executor.
pub struct ParallelExecutor {
    runtime: Arc<PoolRuntime<GdhMsg>>,
    dictionary: Arc<DataDictionary>,
    physical_config: PhysicalConfig,
    reply_timeout: Duration,
    /// Ship batches as they are produced (default). Off = the
    /// materialized baseline: OFMs drain their subplan before the first
    /// ship (same messages, no overlap) — kept for the E6 experiment.
    streaming: bool,
    /// Ship batches as typed column blocks (default). Off = the row
    /// wire: chunks carry `Vec<Tuple>`-backed batches and `wire_bits`
    /// meters per-tuple row encoding — kept as the E11 baseline.
    /// Defaults from [`prisma_types::wire::columnar_wire_default`]
    /// (`PRISMA_ROW_WIRE=1` flips it machine-wide).
    columnar_wire: bool,
    next_query: AtomicU32,
    /// The machine's per-PE worker pools, when morsel parallelism is on.
    /// Coordinator-side handle used only to snapshot counters around a
    /// query ([`ExecMetrics::pool_morsels`]); the pools themselves are
    /// driven by the OFM actors.
    pools: Option<Arc<prisma_poolx::PoolSet>>,
    /// The machine's fault injector, doubling as the failure detector:
    /// a reply timeout consults [`prisma_faultx::FaultInjector::is_dead`]
    /// to decide between promoting a fragment's backup replica (PE
    /// dead) and re-asking the living primary (stream starved by a
    /// lost chunk).
    faults: Arc<prisma_faultx::FaultInjector>,
}

impl ParallelExecutor {
    /// Executor over a runtime and dictionary. The reply timeout comes
    /// from the machine configuration ([`prisma_types::MachineConfig::reply_timeout`]).
    pub fn new(runtime: Arc<PoolRuntime<GdhMsg>>, dictionary: Arc<DataDictionary>) -> Self {
        let reply_timeout = dictionary.config().reply_timeout();
        ParallelExecutor {
            runtime,
            dictionary,
            physical_config: PhysicalConfig::default(),
            reply_timeout,
            streaming: true,
            columnar_wire: prisma_types::wire::columnar_wire_default(),
            next_query: AtomicU32::new(0),
            pools: None,
            faults: prisma_faultx::global().clone(),
        }
    }

    /// Use a scripted fault injector as this executor's failure
    /// detector (the GDH threads its machine-wide injector through).
    pub fn set_fault_injector(&mut self, faults: Arc<prisma_faultx::FaultInjector>) {
        self.faults = faults;
    }

    /// Attach the machine's per-PE worker pools so per-query metrics can
    /// report morsel/steal counts.
    pub fn with_pools(mut self, pools: Arc<prisma_poolx::PoolSet>) -> Self {
        self.pools = Some(pools);
        self
    }

    /// The physical-lowering tunables this executor plans with (EXPLAIN
    /// must lower with the same config execution uses).
    pub fn physical_config(&self) -> PhysicalConfig {
        self.physical_config
    }

    /// Override the physical-lowering tunables (e.g. the broadcast-vs-
    /// partition threshold for the E2/E8 experiments).
    pub fn set_physical_config(&mut self, config: PhysicalConfig) {
        self.physical_config = config;
    }

    /// Toggle streamed batch shipping. `false` selects the materialized
    /// baseline (OFMs run their subplan to completion before shipping) —
    /// only the E6 experiment and tests should ever want that.
    pub fn set_streaming(&mut self, streaming: bool) {
        self.streaming = streaming;
    }

    /// Whether fragment replies stream per batch.
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// Toggle the columnar wire format. `false` selects the row wire
    /// (chunks carry row batches, metered per tuple) — the E11 baseline
    /// and the escape hatch for a mixed-version machine.
    pub fn set_columnar_wire(&mut self, columnar: bool) {
        self.columnar_wire = columnar;
    }

    /// Whether chunks ship as typed column blocks.
    pub fn columnar_wire(&self) -> bool {
        self.columnar_wire
    }

    fn fresh_query(&self) -> QueryCtx {
        QueryCtx {
            query_id: QueryId(self.next_query.fetch_add(1, Ordering::Relaxed)),
            started: Instant::now(),
            metrics: ExecMetrics::default(),
            next_exchange: 0,
        }
    }

    /// Execute a logical plan, returning the result and metrics.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<(Relation, ExecMetrics)> {
        let cse_keys: HashSet<String> = detect_common_subexpressions(plan)
            .into_iter()
            .map(|c| c.key)
            .collect();
        let mut memo: HashMap<String, Arc<Relation>> = HashMap::new();
        let mut q = self.fresh_query();
        // Pool counters are cumulative per machine; the delta across the
        // query is this query's share (queries on one coordinator run
        // one at a time).
        let pools_before = self.pools.as_ref().map(|p| p.total_stats());
        // Chunk-scan counters are cumulative per process, same as the
        // pool counters: the delta across the query is this query's share.
        let (scanned_before, pruned_before) = prisma_relalg::chunk_scan_counters();
        let rel = self.exec_node(plan, &cse_keys, &mut memo, &mut q)?;
        q.metrics.full_result_micros = q.started.elapsed().as_micros().max(1) as u64;
        let (scanned_after, pruned_after) = prisma_relalg::chunk_scan_counters();
        q.metrics.chunks_scanned = scanned_after - scanned_before;
        q.metrics.chunks_pruned = pruned_after - pruned_before;
        if let (Some(pools), Some(before)) = (&self.pools, pools_before) {
            let after = pools.total_stats();
            q.metrics.pool_workers = pools.workers_per_pe().max(1) as u64;
            q.metrics.pool_morsels = after.morsels - before.morsels;
            q.metrics.pool_steals = after.steals - before.steals;
        } else {
            q.metrics.pool_workers = 1;
        }
        Ok((Arc::unwrap_or_clone(rel), q.metrics))
    }

    /// Materialize a full base relation (used by the PRISMAlog evaluator
    /// fallback and by tests).
    pub fn materialize(&self, relation: &str) -> Result<Relation> {
        let info = self.dictionary.relation(relation)?;
        let plan = LogicalPlan::scan(relation, info.schema.clone());
        let mut q = self.fresh_query();
        self.run_on_fragments(&plan, relation, &mut q)
            .map(Arc::unwrap_or_clone)
    }

    /// Lower a (sub)plan for shipping or local execution. The trace is
    /// a sink: nobody reads firings on the execution path, and the
    /// EXPLAIN annotation walks would re-estimate every subtree per
    /// query for nothing.
    fn lower(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        let mut trace = Trace::sink();
        lower_physical(plan, &*self.dictionary, self.physical_config, &mut trace)
    }

    fn exec_node(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        let key = if cse.is_empty() {
            None
        } else {
            let k = plan_key(plan);
            if cse.contains(&k) { Some(k) } else { None }
        };
        if let Some(k) = &key {
            if let Some(hit) = memo.get(k) {
                q.metrics.memo_hits += 1;
                return Ok(Arc::clone(hit));
            }
        }

        let result = self.exec_inner(plan, cse, memo, q)?;
        if let Some(k) = key {
            memo.insert(k, Arc::clone(&result));
        }
        Ok(result)
    }

    fn exec_inner(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        // 1. Fragment-parallel pushable subtree.
        if let Some(relation) = pushable_relation(plan) {
            return self.run_on_fragments(plan, &relation, q);
        }
        match plan {
            // 2. Joins between distributed inputs.
            LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on,
                residual,
            } => {
                // Both sides pushable and both estimated large: grace join.
                // One lowering decides the strategy AND yields the
                // shippable side plans (projections already fused).
                if !on.is_empty() {
                    if let (Some(lrel), Some(rrel)) =
                        (pushable_relation(left), pushable_relation(right))
                    {
                        if let PhysicalPlan::HashJoin {
                            left: phys_left,
                            right: phys_right,
                            on: phys_on,
                            residual: phys_residual,
                            strategy: JoinStrategy::Partitioned,
                            placement,
                            ..
                        } = self.lower(plan)?
                        {
                            return self.partitioned_join(
                                *phys_left,
                                &lrel,
                                *phys_right,
                                &rrel,
                                &phys_on,
                                phys_residual,
                                placement,
                                q,
                            );
                        }
                    }
                }
                // Broadcast the materialized small side into the fragments
                // of a pushable side. The build side itself assembles from
                // streamed chunks when it is fragment-resident.
                if let Some(rel) = pushable_relation(left) {
                    q.metrics.broadcast_joins += 1;
                    let build = self.exec_node(right, cse, memo, q)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::scan("__build", build_schema)),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, q);
                }
                if let Some(rel) = pushable_relation(right) {
                    q.metrics.broadcast_joins += 1;
                    let build = self.exec_node(left, cse, memo, q)?;
                    let build_schema = build.schema().clone();
                    let frag_plan = LogicalPlan::Join {
                        left: Box::new(LogicalPlan::scan("__build", build_schema)),
                        right: right.clone(),
                        kind: JoinKind::Inner,
                        on: on.clone(),
                        residual: residual.clone(),
                    };
                    let mut extra = HashMap::new();
                    extra.insert("__build".to_owned(), build);
                    return self.run_on_fragments_with(&frag_plan, &rel, extra, q);
                }
                // Neither side pushable: coordinator-local join.
                self.local_exec(plan, cse, memo, q)
            }
            // 3. Decomposable aggregates: partial per fragment, merged
            //    incrementally as partial batches arrive.
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } if pushable_relation(input).is_some() && decomposable(aggs) => {
                let relation = pushable_relation(input).expect("guard");
                let partial_plan = LogicalPlan::Aggregate {
                    input: input.clone(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                };
                let mut merger = PartialMerger::new(group_by.len(), aggs);
                self.stream_fragments(
                    &partial_plan,
                    &relation,
                    HashMap::new(),
                    q,
                    &mut |batch| merger.consume(&batch),
                )?;
                Ok(Arc::new(merger.finish(plan, aggs)?))
            }
            // 4. Recursive operators need their fixpoint bindings intact:
            //    materialize base relations and execute in one piece.
            LogicalPlan::Closure { .. } | LogicalPlan::Fixpoint { .. } => {
                self.local_exec(plan, cse, memo, q)
            }
            // 5. Everything else: execute the children through the
            //    distributed machinery, then apply this one operator at
            //    the coordinator (so a Project above a fragment-parallel
            //    Aggregate does not de-parallelize the aggregate).
            _ => self.exec_via_children(plan, cse, memo, q),
        }
    }

    /// Hash-partitioned (grace) join. With streaming on (the default),
    /// buckets shuffle **directly fragment→fragment**: the coordinator
    /// installs one phase-2 join task per site named in the shuffle
    /// placement map, both sides' fragments address their bucket streams
    /// straight at those sites, and the coordinator merges only the
    /// sites' join-result streams. The `stream: false` baseline keeps
    /// the historical coordinator relay (buckets in, buckets re-shipped)
    /// for the E7 comparison.
    #[allow(clippy::too_many_arguments)]
    fn partitioned_join(
        &self,
        left: PhysicalPlan,
        left_rel: &str,
        right: PhysicalPlan,
        right_rel: &str,
        on: &[(usize, usize)],
        residual: Option<prisma_storage::expr::ScalarExpr>,
        placement: Option<ShufflePlacement>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        q.metrics.partitioned_joins += 1;
        let linfo = self.dictionary.relation(left_rel)?;
        let rinfo = self.dictionary.relation(right_rel)?;
        // The optimizer's placement map, or the default it would emit
        // (plans lowered without fragmentation knowledge).
        let placement = placement.unwrap_or_else(|| {
            let lfrags: Vec<FragmentId> = linfo.fragments.iter().map(|f| f.id).collect();
            ShufflePlacement::round_robin(
                linfo.fragments.len().max(rinfo.fragments.len()).max(1),
                &lfrags,
            )
        });

        let lkeys: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let rkeys: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let lschema = left.output_schema()?;
        let rschema = right.output_schema()?;
        let join_schema = lschema.join(&rschema);
        let site_plan = |lname: &str, rname: &str| PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                relation: lname.into(),
                schema: lschema.clone(),
                projection: None,
                prune: None,
            }),
            right: Box::new(PhysicalPlan::SeqScan {
                relation: rname.into(),
                schema: rschema.clone(),
                projection: None,
                prune: None,
            }),
            kind: JoinKind::Inner,
            on: on.to_vec(),
            residual: residual.clone(),
            strategy: JoinStrategy::Partitioned,
            placement: None,
        };

        if !self.streaming {
            return self.relayed_grace_join(
                &left, &linfo, &right, &rinfo, &lkeys, &rkeys, &placement, &lschema,
                &rschema, join_schema, &site_plan("__part_l", "__part_r"), q,
            );
        }

        // ---- direct fragment→fragment shuffle ----
        let exchange = q.fresh_exchange();
        // Resolve each bucket's site fragment to one this relation
        // actually has; a placement naming a stale fragment (plan cached
        // across a re-fragmentation) falls back to round-robin. The
        // resolved map's `by_site` grouping then drives both the task
        // installs and the per-bucket chunk addressing.
        let handle_of = |fid: FragmentId, j: usize| {
            linfo
                .fragments
                .iter()
                .find(|f| f.id == fid)
                .unwrap_or(&linfo.fragments[j % linfo.fragments.len()])
        };
        let resolved = ShufflePlacement {
            parts: placement.parts,
            sites: placement
                .sites
                .iter()
                .enumerate()
                .map(|(j, &fid)| handle_of(fid, j).id)
                .collect(),
        };
        let site_actors: Vec<prisma_types::ProcessId> = resolved
            .sites
            .iter()
            .enumerate()
            .map(|(j, &fid)| handle_of(fid, j).actor)
            .collect();
        let sites: Vec<(&crate::dictionary::FragmentHandle, Vec<usize>)> = resolved
            .by_site()
            .into_iter()
            .map(|(fid, buckets)| {
                let j = buckets[0];
                (handle_of(fid, j), buckets)
            })
            .collect();
        let left_streams: Vec<u64> = (0..linfo.fragments.len() as u64).collect();
        let lbase = linfo.fragments.len() as u64;
        let right_streams: Vec<u64> =
            (0..rinfo.fragments.len() as u64).map(|i| lbase + i).collect();

        // Install every site's phase-2 task first: the runtime's FIFO
        // channels then guarantee the spec reaches each site before any
        // peer chunk sent on its behalf.
        let mailbox = self.runtime.external_mailbox();
        let plan = site_plan(SHUFFLE_LEFT, SHUFFLE_RIGHT);
        let mut streams: StreamSet = Vec::new();
        for (sidx, (handle, buckets)) in sites.iter().enumerate() {
            self.runtime.send(
                handle.actor,
                GdhMsg::ShuffleJoin {
                    query_id: q.query_id,
                    exchange,
                    plan: Box::new(plan.clone()),
                    lschema: lschema.clone(),
                    rschema: rschema.clone(),
                    buckets: buckets.clone(),
                    left_streams: left_streams.clone(),
                    right_streams: right_streams.clone(),
                    reply_to: mailbox.id,
                    tag: sidx as u64,
                    stream: true,
                    columnar: self.columnar_wire,
                },
            )?;
            q.metrics.fragment_tasks += 1;
            streams.push((sidx as u64, handle.id));
        }
        // Phase 1: both sides' sources, each addressing the sites
        // directly. Fan everything out before collecting anything.
        for (side, physical, info, keys, base) in [
            (ShuffleSide::Left, &left, &linfo, &lkeys, 0u64),
            (ShuffleSide::Right, &right, &rinfo, &rkeys, lbase),
        ] {
            for (i, frag) in info.fragments.iter().enumerate() {
                self.runtime.send(
                    frag.actor,
                    GdhMsg::ShuffleSubplan {
                        query_id: q.query_id,
                        exchange,
                        plan: Box::new(physical.clone()),
                        key_cols: keys.clone(),
                        sites: site_actors.clone(),
                        side,
                        tag: base + i as u64,
                        restrict_to: None,
                        columnar: self.columnar_wire,
                    },
                )?;
                q.metrics.repartition_tasks += 1;
            }
        }
        // The coordinator's only data-path work left: merge the sites'
        // join-result streams (the shuffle streams themselves are in
        // flight fragment→fragment, one per (source, site) pair — count
        // them in the gauge).
        let in_flight_shuffles =
            ((left_streams.len() + right_streams.len()) * sites.len()) as u64;
        // Failover for a lost phase-2 site: re-install its join task at
        // the surviving handle under a fresh exchange id (the high half
        // keyed by recovery round, so a half-fed exchange at a starved
        // site never collides), and re-run both sides' sources with the
        // shuffle **restricted to that one site** — bucket boundaries
        // are unchanged because the site vector keeps every slot, only
        // the lost site's slots are flipped to the replacement actor.
        // Sources are looked up fresh from the dictionary each time: a
        // source whose own PE died is failed over to its backup replica
        // here, before it is re-asked to shuffle.
        let qid = q.query_id;
        let reply_to = mailbox.id;
        let sites_ref = &sites;
        // Backup promotions performed on *source* fragments inside the
        // re-issue (the coordinator only watches site streams, so a dead
        // source surfaces here, not in the receive loop's own check).
        let source_failovers = std::cell::Cell::new(0u64);
        let mut reissue = |handle: &crate::dictionary::FragmentHandle,
                           old_tag: u64,
                           new_tag: u64|
         -> Result<()> {
            let sidx = (old_tag & 0xffff_ffff) as usize;
            let retry_exchange = exchange | (((new_tag >> 32) as u32) << 16);
            self.runtime.send(
                handle.actor,
                GdhMsg::ShuffleJoin {
                    query_id: qid,
                    exchange: retry_exchange,
                    plan: Box::new(plan.clone()),
                    lschema: lschema.clone(),
                    rschema: rschema.clone(),
                    buckets: sites_ref[sidx].1.clone(),
                    left_streams: left_streams.clone(),
                    right_streams: right_streams.clone(),
                    reply_to,
                    tag: new_tag,
                    stream: true,
                    columnar: self.columnar_wire,
                },
            )?;
            let new_site_actors: Vec<prisma_types::ProcessId> = resolved
                .sites
                .iter()
                .enumerate()
                .map(|(j, &fid)| {
                    if fid == handle.id {
                        handle.actor
                    } else {
                        site_actors[j]
                    }
                })
                .collect();
            for (side, rel, physical, keys, base) in [
                (ShuffleSide::Left, left_rel, &left, &lkeys, 0u64),
                (ShuffleSide::Right, right_rel, &right, &rkeys, lbase),
            ] {
                let info = self.dictionary.relation(rel)?;
                for (i, frag) in info.fragments.iter().enumerate() {
                    let src = if self.faults.is_dead(frag.pe) {
                        source_failovers.set(source_failovers.get() + 1);
                        self.dictionary.fail_over_fragment(frag.id)?
                    } else {
                        frag.clone()
                    };
                    self.runtime.send(
                        src.actor,
                        GdhMsg::ShuffleSubplan {
                            query_id: qid,
                            exchange: retry_exchange,
                            plan: Box::new(physical.clone()),
                            key_cols: keys.to_vec(),
                            sites: new_site_actors.clone(),
                            side,
                            tag: base + i as u64,
                            restrict_to: Some(handle.actor),
                            columnar: self.columnar_wire,
                        },
                    )?;
                }
            }
            Ok(())
        };
        let failover = Failover {
            reissue: &mut reissue,
            rounds: 2,
        };
        let mut out = Vec::new();
        self.merge_batch_streams(
            &mailbox,
            streams,
            in_flight_shuffles,
            q,
            Some(failover),
            &mut |batch| {
                out.extend(batch.into_tuples());
                Ok(())
            },
        )?;
        q.metrics.failovers += source_failovers.get();
        Ok(Arc::new(Relation::new(join_schema, out)))
    }

    /// The historical coordinator-relay grace join (the `stream: false`
    /// baseline E7 measures against): every fragment streams its buckets
    /// to the coordinator, which merges them and re-ships bucket pairs
    /// to the phase-2 sites. [`ExecMetrics::relayed_bits`] meters the
    /// payload crossing the coordinator both ways.
    #[allow(clippy::too_many_arguments)]
    fn relayed_grace_join(
        &self,
        left: &PhysicalPlan,
        linfo: &crate::dictionary::RelationInfo,
        right: &PhysicalPlan,
        rinfo: &crate::dictionary::RelationInfo,
        lkeys: &[usize],
        rkeys: &[usize],
        placement: &ShufflePlacement,
        lschema: &Schema,
        rschema: &Schema,
        join_schema: Schema,
        site_plan: &PhysicalPlan,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        let parts = placement.parts;
        // Phase 1: fan out both sides' repartition subplans before
        // collecting either, so the two sides genuinely run in parallel.
        let (lmailbox, lstreams) = self.send_repartition(left, linfo, lkeys, parts, q)?;
        let (rmailbox, rstreams) = self.send_repartition(right, rinfo, rkeys, parts, q)?;
        // While the left side's buckets are merged, the right side's
        // streams are still in flight — count them in the gauge.
        let lbuckets =
            self.collect_partitions(&lmailbox, &lstreams, parts, rstreams.len() as u64, q)?;
        let rbuckets = self.collect_partitions(&rmailbox, &rstreams, parts, 0, q)?;

        // Phase 2: re-ship bucket pairs to the placement's site actors.
        let mailbox = self.runtime.external_mailbox();
        let mut streams: StreamSet = Vec::new();
        for (j, (lb, rb)) in lbuckets.into_iter().zip(rbuckets).enumerate() {
            if lb.is_empty() || rb.is_empty() {
                continue; // an empty side joins to nothing
            }
            let lrel = Relation::new(lschema.clone(), lb);
            let rrel = Relation::new(rschema.clone(), rb);
            q.metrics.relayed_bits += lrel.wire_bits() + rrel.wire_bits();
            let mut extra = HashMap::new();
            extra.insert("__part_l".to_owned(), Arc::new(lrel));
            extra.insert("__part_r".to_owned(), Arc::new(rrel));
            let site = linfo
                .fragments
                .iter()
                .find(|f| f.id == placement.sites[j])
                .unwrap_or(&linfo.fragments[j % linfo.fragments.len()]);
            self.runtime.send(
                site.actor,
                GdhMsg::RunSubplan {
                    query_id: q.query_id,
                    plan: Box::new(site_plan.clone()),
                    extra,
                    reply_to: mailbox.id,
                    tag: j as u64,
                    stream: self.streaming,
                    columnar: self.columnar_wire,
                },
            )?;
            q.metrics.fragment_tasks += 1;
            streams.push((j as u64, site.id));
        }
        let mut out = Vec::new();
        self.merge_batch_streams(&mailbox, streams, 0, q, None, &mut |batch| {
            out.extend(batch.into_tuples());
            Ok(())
        })?;
        Ok(Arc::new(Relation::new(join_schema, out)))
    }

    /// Ship one side's repartition subplan to every fragment of its
    /// relation; bucket chunks arrive on the returned mailbox, one
    /// stream per `(tag, fragment)` pair.
    fn send_repartition(
        &self,
        physical: &PhysicalPlan,
        info: &crate::dictionary::RelationInfo,
        key_cols: &[usize],
        parts: usize,
        q: &mut QueryCtx,
    ) -> Result<(ExternalMailbox<GdhMsg>, StreamSet)> {
        let mailbox = self.runtime.external_mailbox();
        let mut streams = Vec::with_capacity(info.fragments.len());
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::Repartition {
                    query_id: q.query_id,
                    plan: Box::new(physical.clone()),
                    key_cols: key_cols.to_vec(),
                    parts,
                    reply_to: mailbox.id,
                    tag: i as u64,
                    stream: self.streaming,
                },
            )?;
            q.metrics.repartition_tasks += 1;
            streams.push((i as u64, frag.id));
        }
        Ok((mailbox, streams))
    }

    /// Merge the repartition bucket streams, bucket-wise, as chunks
    /// arrive (each chunk is one produced batch's buckets).
    fn collect_partitions(
        &self,
        mailbox: &ExternalMailbox<GdhMsg>,
        streams: &[(u64, FragmentId)],
        parts: usize,
        extra_in_flight: u64,
        q: &mut QueryCtx,
    ) -> Result<Vec<Vec<Tuple>>> {
        let mut merged: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
        self.receive_streams(
            mailbox,
            streams.to_vec(),
            extra_in_flight,
            q,
            None,
            |msg| match msg {
                GdhMsg::PartitionChunk {
                    query_id,
                    tag,
                    seq,
                    buckets,
                } => Ok(StreamMsg::Chunk {
                    query_id,
                    tag,
                    seq,
                    payload: buckets,
                }),
                other => Err(Box::new(other)),
            },
            &mut |metrics, chunk: Vec<Vec<Tuple>>| {
                let mut rows_in_chunk = 0;
                for (bucket, rows) in merged.iter_mut().zip(chunk) {
                    rows_in_chunk += rows.len() as u64;
                    metrics.relayed_bits +=
                        rows.iter().map(Tuple::wire_bits).sum::<u64>();
                    bucket.extend(rows);
                }
                metrics.tuples_shipped += rows_in_chunk;
                Ok(rows_in_chunk)
            },
        )?;
        Ok(merged)
    }

    /// Receive one fan-out's batch streams, feeding every batch to `sink`
    /// the moment its in-stream predecessors have arrived.
    fn merge_batch_streams(
        &self,
        mailbox: &ExternalMailbox<GdhMsg>,
        streams: StreamSet,
        extra_in_flight: u64,
        q: &mut QueryCtx,
        failover: Option<Failover<'_>>,
        sink: &mut dyn FnMut(Batch) -> Result<()>,
    ) -> Result<()> {
        self.receive_streams(
            mailbox,
            streams,
            extra_in_flight,
            q,
            failover,
            |msg| match msg {
                GdhMsg::BatchChunk {
                    query_id,
                    tag,
                    seq,
                    data,
                } => Ok(StreamMsg::Chunk {
                    query_id,
                    tag,
                    seq,
                    payload: data,
                }),
                other => Err(Box::new(other)),
            },
            &mut |metrics, data: ChunkData| {
                // Decode at the merge: a column block that fails its
                // checksum or structure validation fails the query as a
                // protocol error instead of feeding the sink garbage.
                let batch = data.into_batch()?;
                let rows = batch.len() as u64;
                metrics.batches_shipped += 1;
                metrics.tuples_shipped += rows;
                sink(batch)?;
                Ok(rows)
            },
        )
    }

    /// The shared receive loop under both chunk kinds: decode each
    /// mailbox message (`StreamEnd` is common to both protocols and is
    /// decoded here; `decode` maps only the chunk variant), restore
    /// per-stream order through [`StreamReassembly`], and hand released
    /// chunks to `on_chunk` (which returns the row count it consumed).
    /// Stamps the query's first-batch latency on the first arriving chunk
    /// of either kind; returns once every stream has delivered its
    /// `StreamEnd`, after cross-checking each stream's advertised row
    /// count against the rows actually released. A timeout names the
    /// query, the fragments still owing chunks, and the time waited; a
    /// fragment-local error fails the query naming the query and fragment.
    ///
    /// With a [`Failover`] armed, a timeout is survivable instead: each
    /// still-open stream is retired (late chunks from the old attempt
    /// are silently dropped by the reassembly), its fragment's backup
    /// replica is promoted when the primary's PE is dead, and the
    /// stream is re-requested under a fresh tag — then the deadline
    /// resets and the merge resumes. Because a re-issued stream replays
    /// from scratch, released chunks are **staged per stream** and only
    /// fed to `on_chunk` once their stream completes, so a replaced
    /// stream's partial delivery never double-counts; the merged result
    /// is bit-identical to a fault-free run.
    #[allow(clippy::too_many_arguments)]
    fn receive_streams<T>(
        &self,
        mailbox: &ExternalMailbox<GdhMsg>,
        mut streams: StreamSet,
        extra_in_flight: u64,
        q: &mut QueryCtx,
        mut failover: Option<Failover<'_>>,
        decode: impl Fn(GdhMsg) -> std::result::Result<StreamMsg<T>, Box<GdhMsg>>,
        on_chunk: &mut dyn FnMut(&mut ExecMetrics, T) -> Result<u64>,
    ) -> Result<()> {
        let mut reassembly: StreamReassembly<T> =
            StreamReassembly::expecting(streams.iter().map(|&(t, _)| t));
        q.metrics.max_in_flight_streams = q
            .metrics
            .max_in_flight_streams
            .max(streams.len() as u64 + extra_in_flight);
        let waited = Instant::now();
        // One reply timeout bounds the whole fan-out: the deadline is
        // carried across the loop, so each received message narrows the
        // remaining wait instead of resetting the clock (a slow-trickling
        // stream used to stall N×timeout before erroring). A failover
        // round is the only thing that re-arms it.
        let mut deadline = waited + self.reply_timeout;
        // Recovery-round stamp: round r re-requests stream `t` as tag
        // `(t & 0xffff_ffff) | (r << 32)` — unique against every earlier
        // attempt, and the low half keeps the original fan-out index.
        let mut round: u64 = 0;
        let staging = failover.is_some();
        let mut staged: HashMap<u64, Vec<T>> = HashMap::new();
        let mut released: Vec<T> = Vec::new();
        let mut rows_released: HashMap<u64, u64> = HashMap::new();
        let mut rows_advertised: HashMap<u64, u64> = HashMap::new();
        // Per-stream traffic stats, folded into the query metrics only
        // once the whole fan-out completes. Folding at `StreamEnd` used
        // to double-count: a stream whose end arrived but was then
        // retired (lost chunk → failover re-request) had its bits
        // counted once for the dead attempt and again when the
        // replacement stream ended.
        let mut stream_stats: HashMap<u64, crate::message::StreamStats> = HashMap::new();
        while !reassembly.all_complete() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match mailbox.recv_timeout(remaining) {
                Ok(m) => m,
                Err(_) => {
                    let Some(f) = failover.as_mut().filter(|f| f.rounds > 0) else {
                        return Err(self.stream_timeout(q, waited, &reassembly, &streams));
                    };
                    f.rounds -= 1;
                    round += 1;
                    for tag in reassembly.open_streams() {
                        let pos = streams
                            .iter()
                            .position(|&(t, _)| t == tag)
                            .expect("every expected stream is tracked");
                        let frag = streams[pos].1;
                        let handle = self
                            .dictionary
                            .fragment_handle(frag)
                            .ok_or(PrismaError::NoSuchFragment(frag))?;
                        // Promote the backup replica only when the
                        // primary's PE is actually dead; a living but
                        // starved fragment (dropped chunk, starved
                        // phase-2 site) is simply re-asked.
                        let handle = if self.faults.is_dead(handle.pe) {
                            q.metrics.failovers += 1;
                            self.dictionary.fail_over_fragment(frag).map_err(|e| {
                                PrismaError::MachineFault(format!(
                                    "{}: cannot recover {frag}: {e}",
                                    q.query_id
                                ))
                            })?
                        } else {
                            handle
                        };
                        let new_tag = (tag & 0xffff_ffff) | (round << 32);
                        reassembly.retire(tag);
                        reassembly.expect(new_tag);
                        staged.remove(&tag);
                        rows_released.remove(&tag);
                        rows_advertised.remove(&tag);
                        stream_stats.remove(&tag);
                        streams[pos].0 = new_tag;
                        (f.reissue)(&handle, tag, new_tag)?;
                        q.metrics.streams_rerequested += 1;
                    }
                    deadline = Instant::now() + self.reply_timeout;
                    continue;
                }
            };
            let decoded = match msg {
                GdhMsg::StreamEnd {
                    query_id,
                    tag,
                    seq_count,
                    result,
                } => StreamMsg::End {
                    query_id,
                    tag,
                    seq_count,
                    result,
                },
                other => match decode(other) {
                    Ok(chunk) => chunk,
                    Err(unexpected) => {
                        return Err(PrismaError::Execution(format!(
                            "{}: unexpected reply {unexpected:?}",
                            q.query_id
                        )))
                    }
                },
            };
            match decoded {
                StreamMsg::Chunk {
                    query_id,
                    tag,
                    seq,
                    payload,
                } if query_id == q.query_id => {
                    if q.metrics.first_batch_micros == 0 {
                        q.metrics.first_batch_micros =
                            q.started.elapsed().as_micros().max(1) as u64;
                    }
                    released.clear();
                    reassembly.accept(tag, seq, payload, &mut released)?;
                    for chunk in released.drain(..) {
                        if staging {
                            staged.entry(tag).or_default().push(chunk);
                        } else {
                            *rows_released.entry(tag).or_default() +=
                                on_chunk(&mut q.metrics, chunk)?;
                        }
                    }
                }
                StreamMsg::End {
                    query_id,
                    tag,
                    seq_count,
                    result,
                } if query_id == q.query_id => {
                    // A straggler end from a retired attempt (the dead
                    // primary limping on, or a delayed duplicate) must
                    // not fail or pollute the replacement stream.
                    if reassembly.is_retired(tag) {
                        continue;
                    }
                    match result {
                        Ok(stats) => {
                            rows_advertised.insert(tag, stats.rows);
                            stream_stats.insert(tag, stats);
                            reassembly.finish(tag, seq_count)?;
                            // Flush the stream's staged chunks only once
                            // it is genuinely complete — a lost chunk
                            // leaves it open (the end marker advertises
                            // more seqs than arrived) for failover.
                            if staging && !reassembly.open_streams().contains(&tag) {
                                for chunk in staged.remove(&tag).unwrap_or_default() {
                                    *rows_released.entry(tag).or_default() +=
                                        on_chunk(&mut q.metrics, chunk)?;
                                }
                            }
                        }
                        Err(e) => return Err(fragment_failure(q.query_id, &streams, tag, &e)),
                    }
                }
                StreamMsg::Chunk { query_id, .. } | StreamMsg::End { query_id, .. } => {
                    return Err(PrismaError::Execution(format!(
                        "{}: reply for foreign {query_id} on this query's mailbox",
                        q.query_id
                    )))
                }
            }
        }
        // Every stream completed: fold each surviving stream's traffic
        // stats exactly once (retired attempts were dropped above).
        for stats in stream_stats.values() {
            q.metrics.shuffled_direct_bits += stats.shuffled_bits;
            q.metrics.max_site_shuffled_bits =
                q.metrics.max_site_shuffled_bits.max(stats.shuffled_bits);
            q.metrics.relay_bits_saved += stats.relay_saved_bits;
        }
        // And the rows each fragment said it shipped must be the rows
        // that came out of reassembly.
        for &(tag, frag) in &streams {
            let advertised = rows_advertised.get(&tag).copied().unwrap_or(0);
            let released = rows_released.get(&tag).copied().unwrap_or(0);
            if advertised != released {
                return Err(PrismaError::Execution(format!(
                    "{}: {frag} advertised {advertised} row(s) but {released} arrived",
                    q.query_id
                )));
            }
        }
        Ok(())
    }

    /// The timeout error for a fan-out with incomplete streams: names the
    /// query, how long the coordinator waited, and which fragments still
    /// owe chunks or their end-of-stream marker.
    fn stream_timeout<T>(
        &self,
        q: &QueryCtx,
        waited: Instant,
        reassembly: &StreamReassembly<T>,
        streams: &[(u64, FragmentId)],
    ) -> PrismaError {
        let open = reassembly.open_streams();
        let missing: Vec<String> = open
            .iter()
            .map(|t| match streams.iter().find(|(tag, _)| tag == t) {
                Some((_, frag)) => format!("{frag} (stream {t})"),
                None => format!("stream {t}"),
            })
            .collect();
        PrismaError::Execution(format!(
            "{}: reply timeout after {:.3}s — {} of {} fragment stream(s) incomplete: [{}]",
            q.query_id,
            waited.elapsed().as_secs_f64(),
            open.len(),
            streams.len(),
            missing.join(", ")
        ))
    }

    /// Execute each child distributed, splice the results in as
    /// `Arc`-shared provider entries behind synthetic scan names, and run
    /// only this node through the local batch executor (no copies of the
    /// child results are made).
    fn exec_via_children(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        let mut provider: HashMap<String, Arc<Relation>> = HashMap::new();
        let mut spliced = Vec::new();
        for (i, child) in plan.children().into_iter().enumerate() {
            let rel = self.exec_node(child, cse, memo, q)?;
            let name = format!("__child{i}");
            spliced.push(LogicalPlan::scan(&name, rel.schema().clone()));
            provider.insert(name, rel);
        }
        let mut it = spliced.into_iter();
        let mut next = || it.next().expect("children arity matches");
        let rebuilt = match plan.clone() {
            LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                input: Box::new(next()),
                predicate,
            },
            LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
                input: Box::new(next()),
                exprs,
                schema,
            },
            LogicalPlan::Join {
                kind, on, residual, ..
            } => LogicalPlan::Join {
                left: Box::new(next()),
                right: Box::new(next()),
                kind,
                on,
                residual,
            },
            LogicalPlan::Union { all, .. } => LogicalPlan::Union {
                left: Box::new(next()),
                right: Box::new(next()),
                all,
            },
            LogicalPlan::Difference { .. } => LogicalPlan::Difference {
                left: Box::new(next()),
                right: Box::new(next()),
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
                input: Box::new(next()),
            },
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: Box::new(next()),
                group_by,
                aggs,
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(next()),
                keys,
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                input: Box::new(next()),
                n,
            },
            leaf => leaf,
        };
        Ok(Arc::new(execute_physical(&self.lower(&rebuilt)?, &provider)?))
    }

    /// Execute `plan` at the coordinator through the batch executor,
    /// materializing each free base relation via the distributed machinery
    /// into an `Arc`-shared provider (fixpoint bindings stay intact).
    fn local_exec(
        &self,
        plan: &LogicalPlan,
        cse: &HashSet<String>,
        memo: &mut HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        let mut provider: HashMap<String, Arc<Relation>> = HashMap::new();
        for name in plan.scanned_relations() {
            if provider.contains_key(&name) {
                continue;
            }
            let info = self.dictionary.relation(&name)?;
            let scan = LogicalPlan::scan(&name, info.schema.clone());
            let rel = self.exec_node(&scan, cse, memo, q)?;
            provider.insert(name, rel);
        }
        Ok(Arc::new(execute_physical(&self.lower(plan)?, &provider)?))
    }

    fn run_on_fragments(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        self.run_on_fragments_with(plan, relation, HashMap::new(), q)
    }

    /// Lower `plan`, ship it (+ `extra` relations) to every fragment
    /// actor of `relation`, and union the reply streams into a relation —
    /// tuples are appended as chunks arrive, while other fragments are
    /// still scanning.
    fn run_on_fragments_with(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        extra: HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
    ) -> Result<Arc<Relation>> {
        let physical = self.lower(plan)?;
        let schema = physical.output_schema()?;
        let mut out: Vec<Tuple> = Vec::new();
        self.ship_to_fragments(&physical, relation, extra, q, &mut |batch| {
            out.extend(batch.into_tuples());
            Ok(())
        })?;
        Ok(Arc::new(Relation::new(schema, out)))
    }

    /// Lower `plan` and stream every fragment's reply batches into `sink`
    /// (incremental consumers: partial-aggregate merge, union sinks).
    fn stream_fragments(
        &self,
        plan: &LogicalPlan,
        relation: &str,
        extra: HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
        sink: &mut dyn FnMut(Batch) -> Result<()>,
    ) -> Result<()> {
        let physical = self.lower(plan)?;
        self.ship_to_fragments(&physical, relation, extra, q, sink)
    }

    fn ship_to_fragments(
        &self,
        physical: &PhysicalPlan,
        relation: &str,
        extra: HashMap<String, Arc<Relation>>,
        q: &mut QueryCtx,
        sink: &mut dyn FnMut(Batch) -> Result<()>,
    ) -> Result<()> {
        let info = self.dictionary.relation(relation)?;
        let mailbox = self.runtime.external_mailbox();
        let mut streams = Vec::with_capacity(info.fragments.len());
        for (i, frag) in info.fragments.iter().enumerate() {
            self.runtime.send(
                frag.actor,
                GdhMsg::RunSubplan {
                    query_id: q.query_id,
                    plan: Box::new(physical.clone()),
                    extra: extra.clone(),
                    reply_to: mailbox.id,
                    tag: i as u64,
                    stream: self.streaming,
                    columnar: self.columnar_wire,
                },
            )?;
            q.metrics.fragment_tasks += 1;
            streams.push((i as u64, frag.id));
        }
        // Failover: re-run the lost fragment's subplan at the handle
        // the coordinator was given back — the promoted backup replica
        // when the primary died, the primary itself when only a chunk
        // was lost — under the replacement tag.
        let qid = q.query_id;
        let reply_to = mailbox.id;
        let streaming = self.streaming;
        let columnar = self.columnar_wire;
        let mut reissue = |handle: &crate::dictionary::FragmentHandle,
                           _old: u64,
                           new_tag: u64|
         -> Result<()> {
            self.runtime.send(
                handle.actor,
                GdhMsg::RunSubplan {
                    query_id: qid,
                    plan: Box::new(physical.clone()),
                    extra: extra.clone(),
                    reply_to,
                    tag: new_tag,
                    stream: streaming,
                    columnar,
                },
            )
        };
        let failover = Failover {
            reissue: &mut reissue,
            rounds: 2,
        };
        self.merge_batch_streams(&mailbox, streams, 0, q, Some(failover), sink)
    }
}

/// The error for a stream cut short by a fragment-local failure: names
/// the query and fragment, keeps the underlying error's message.
fn fragment_failure(
    query_id: QueryId,
    streams: &[(u64, FragmentId)],
    tag: u64,
    e: &PrismaError,
) -> PrismaError {
    let who = match streams.iter().find(|(t, _)| *t == tag) {
        Some((_, frag)) => format!("{frag}"),
        None => format!("stream {tag}"),
    };
    PrismaError::Execution(format!("{query_id}: {who} stream failed: {e}"))
}

/// If `plan` is a Select/Project chain over exactly one base-relation
/// scan, return that relation's name.
///
/// Distinct is excluded (local dedup ≠ global dedup under bag semantics is
/// fine, but a parent expecting set semantics must dedup globally — the
/// coordinator path handles that). Closure is excluded: the closure of a
/// union of fragments is not the union of per-fragment closures.
fn pushable_relation(plan: &LogicalPlan) -> Option<String> {
    match plan {
        LogicalPlan::Scan { relation, .. } => {
            if relation.starts_with("__") || relation.starts_with('Δ') {
                None // executor-internal or fixpoint binding
            } else {
                Some(relation.clone())
            }
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
            pushable_relation(input)
        }
        _ => None,
    }
}

fn decomposable(aggs: &[AggExpr]) -> bool {
    aggs.iter().all(|a| {
        matches!(
            a.func,
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max
        )
    })
}

/// Incremental merge of per-fragment partial aggregates: COUNT→SUM,
/// SUM→SUM, MIN→MIN, MAX→MAX, re-grouped on the same keys. Partial
/// batches feed the merge accumulators the moment they arrive — no
/// materialized partials relation exists at any point.
struct PartialMerger {
    group_cols: Vec<usize>,
    merge_funcs: Vec<AggFunc>,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
    /// First-seen order of group keys (stable output like the batch
    /// executor's hash aggregate).
    order: Vec<Vec<Value>>,
}

impl PartialMerger {
    fn new(num_group_cols: usize, aggs: &[AggExpr]) -> Self {
        let merge_funcs = aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => unreachable!("guarded by decomposable()"),
            })
            .collect();
        PartialMerger {
            group_cols: (0..num_group_cols).collect(),
            merge_funcs,
            groups: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Fold one arriving partial batch into the merge accumulators.
    fn consume(&mut self, batch: &Batch) -> Result<()> {
        let PartialMerger {
            group_cols,
            merge_funcs,
            groups,
            order,
        } = self;
        for row in 0..batch.len() {
            let key = batch.key_at(row, group_cols);
            let accs = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                merge_funcs.iter().map(|&f| Accumulator::new(f)).collect()
            });
            for (i, acc) in accs.iter_mut().enumerate() {
                acc.update(&batch.value_at(row, group_cols.len() + i))?;
            }
        }
        Ok(())
    }

    /// Finish the merge into the original aggregate's output relation.
    fn finish(self, original: &LogicalPlan, aggs: &[AggExpr]) -> Result<Relation> {
        let final_schema = original.output_schema()?;
        let num_group_cols = self.group_cols.len();
        // A global (ungrouped) aggregate always yields one row, even over
        // zero fragment partials; and COUNT over zero matching rows must
        // be 0, not the NULL a SUM-merge of nothing produces.
        if num_group_cols == 0 {
            let row: Vec<Value> = match self.order.first() {
                Some(key) => self.groups[key].iter().map(Accumulator::finish).collect(),
                None => self
                    .merge_funcs
                    .iter()
                    .map(|&f| Accumulator::new(f).finish())
                    .collect(),
            };
            let fixed: Vec<Value> = row
                .into_iter()
                .zip(aggs)
                .map(|(v, a)| {
                    if v.is_null()
                        && matches!(a.func, AggFunc::Count | AggFunc::CountStar)
                    {
                        Value::Int(0)
                    } else {
                        v
                    }
                })
                .collect();
            return Ok(Relation::new(final_schema, vec![Tuple::new(fixed)]));
        }
        let mut tuples = Vec::with_capacity(self.order.len());
        for key in &self.order {
            let accs = &self.groups[key];
            let mut row = key.clone();
            row.extend(accs.iter().map(Accumulator::finish));
            tuples.push(Tuple::new(row));
        }
        Ok(Relation::new(final_schema, tuples))
    }
}

/// Schema helper re-exported for the facade.
pub fn scan_of(dictionary: &DataDictionary, relation: &str) -> Result<LogicalPlan> {
    let info = dictionary.relation(relation)?;
    Ok(LogicalPlan::scan(relation, info.schema))
}

#[allow(dead_code)]
fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<GdhMsg>();
    is_send::<Schema>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{FragmentHandle, RelationInfo};
    use crate::message::OfmActor;
    use prisma_multicomputer::CostModel;
    use prisma_ofm::{Ofm, OfmKind};
    use prisma_poolx::{Ctx, Process, TrafficLedger};
    use prisma_stable::DiskProfile;
    use prisma_types::{tuple, Column, DataType, MachineConfig, PeId, TxnId};

    fn test_schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn rig(
        reply_timeout_secs: u64,
    ) -> (Arc<PoolRuntime<GdhMsg>>, Arc<DataDictionary>) {
        let cfg = MachineConfig::paper_prototype()
            .with_pes(2)
            .with_reply_timeout_secs(reply_timeout_secs);
        let ledger = Arc::new(TrafficLedger::new(CostModel::new(&cfg).unwrap()));
        let runtime = PoolRuntime::start(2, ledger);
        let dict = Arc::new(DataDictionary::new(cfg, DiskProfile::instant()));
        (runtime, dict)
    }

    fn loaded_ofm(id: u32, rows: std::ops::Range<i64>) -> Ofm {
        loaded_ofm_named(id, "t", rows)
    }

    fn loaded_ofm_named(id: u32, relation: &str, rows: std::ops::Range<i64>) -> Ofm {
        let mut ofm = Ofm::new(FragmentId(id), relation, test_schema(), OfmKind::Transient);
        // Pin the seal threshold to the default batch size so tests that
        // assert exact batch counts are immune to the `SEAL_EVERY` lane
        // (sealed chunks ship one batch each).
        ofm.fragment_mut().set_seal_rows(1024);
        let txn = TxnId(1);
        for i in rows {
            ofm.insert(txn, tuple![i, i % 5]).unwrap();
        }
        ofm.commit(txn).unwrap();
        ofm
    }

    /// Register `relation` over `frag_rows.len()` fragments (one OFM actor
    /// per row range, round-robin over the PEs).
    fn register_fragmented(
        runtime: &Arc<PoolRuntime<GdhMsg>>,
        dict: &Arc<DataDictionary>,
        relation: &str,
        first_id: u32,
        frag_rows: &[std::ops::Range<i64>],
    ) {
        let pes = runtime.num_pes();
        let fragments = frag_rows
            .iter()
            .enumerate()
            .map(|(i, rows)| {
                let id = first_id + i as u32;
                let pe = PeId::from(i % pes);
                let actor = runtime
                    .spawn(
                        pe,
                        Box::new(OfmActor::new(loaded_ofm_named(id, relation, rows.clone()))),
                    )
                    .unwrap();
                FragmentHandle::new(FragmentId(id), pe, actor)
            })
            .collect();
        dict.register(
            relation,
            RelationInfo {
                schema: test_schema(),
                frag_column: None,
                fragments,
            },
        )
        .unwrap();
    }

    /// An actor that swallows every request — a fragment that hangs.
    struct SilentActor;
    impl Process<GdhMsg> for SilentActor {
        fn handle(&mut self, _msg: GdhMsg, _ctx: &mut Ctx<'_, GdhMsg>) {}
    }

    #[test]
    fn slow_fragment_timeout_names_query_fragment_and_elapsed() {
        let (runtime, dict) = rig(1);
        let a0 = runtime
            .spawn(PeId(0), Box::new(OfmActor::new(loaded_ofm(0, 0..10))))
            .unwrap();
        let a1 = runtime.spawn(PeId(1), Box::new(SilentActor)).unwrap();
        dict.register(
            "t",
            RelationInfo {
                schema: test_schema(),
                frag_column: None,
                fragments: vec![
                    FragmentHandle::new(FragmentId(0), PeId(0), a0),
                    FragmentHandle::new(FragmentId(7), PeId(1), a1),
                ],
            },
        )
        .unwrap();
        let exec = ParallelExecutor::new(runtime.clone(), dict.clone());
        let err = exec
            .execute(&LogicalPlan::scan("t", test_schema()))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("q0"), "query id missing: {msg}");
        assert!(msg.contains("frag7"), "hung fragment not named: {msg}");
        assert!(!msg.contains("frag0"), "healthy fragment blamed: {msg}");
        assert!(msg.contains("reply timeout after"), "no elapsed time: {msg}");
        assert!(msg.contains("1 of 2 fragment stream(s)"), "{msg}");
        runtime.shutdown();
    }

    #[test]
    fn streamed_and_materialized_paths_agree_and_meter_identically() {
        let (runtime, dict) = rig(30);
        // 3000 rows per fragment → 3 batches each: real multi-chunk streams.
        let a0 = runtime
            .spawn(PeId(0), Box::new(OfmActor::new(loaded_ofm(0, 0..3000))))
            .unwrap();
        let a1 = runtime
            .spawn(PeId(1), Box::new(OfmActor::new(loaded_ofm(1, 3000..6000))))
            .unwrap();
        dict.register(
            "t",
            RelationInfo {
                schema: test_schema(),
                frag_column: None,
                fragments: vec![
                    FragmentHandle::new(FragmentId(0), PeId(0), a0),
                    FragmentHandle::new(FragmentId(1), PeId(1), a1),
                ],
            },
        )
        .unwrap();
        let plan = LogicalPlan::scan("t", test_schema());
        let mut exec = ParallelExecutor::new(runtime.clone(), dict.clone());

        let (streamed, m) = exec.execute(&plan).unwrap();
        assert_eq!(streamed.len(), 6000);
        assert_eq!(m.tuples_shipped, 6000);
        assert_eq!(m.batches_shipped, 6, "3 batches per fragment: {m:?}");
        assert!(m.first_batch_micros > 0, "{m:?}");
        assert!(
            m.first_batch_micros <= m.full_result_micros,
            "first batch cannot arrive after the full result: {m:?}"
        );
        assert_eq!(m.max_in_flight_streams, 2, "{m:?}");

        exec.set_streaming(false);
        let (materialized, m2) = exec.execute(&plan).unwrap();
        assert_eq!(
            streamed.canonicalized().tuples(),
            materialized.canonicalized().tuples()
        );
        assert_eq!(m2.batches_shipped, 6);
        runtime.shutdown();
    }

    /// Force every equi-join onto the grace path (estimates without
    /// stats default to 1000 rows per side, above a 0-row broadcast cap).
    fn grace_config(shuffle_parts: Option<usize>) -> prisma_optimizer::PhysicalConfig {
        prisma_optimizer::PhysicalConfig {
            broadcast_max_rows: 0.0,
            shuffle_parts,
            ..prisma_optimizer::PhysicalConfig::default()
        }
    }

    fn join_plan() -> LogicalPlan {
        LogicalPlan::scan("l", test_schema())
            .join(LogicalPlan::scan("r", test_schema()), vec![(0, 0)])
    }

    #[test]
    fn direct_shuffle_agrees_with_coordinator_relay_and_meters_the_hop() {
        let (runtime, dict) = rig(30);
        // 2 left fragments host the phase-2 sites; 2 right fragments.
        register_fragmented(&runtime, &dict, "l", 0, &[0..1500, 1500..3000]);
        register_fragmented(&runtime, &dict, "r", 10, &[0..1100, 1100..2200]);
        let mut exec = ParallelExecutor::new(runtime.clone(), dict.clone());
        exec.set_physical_config(grace_config(None));
        // Pin the row wire: the relay baseline meters row payloads, so
        // the direct hop must ship rows too for the bit-for-bit
        // relayed_bits == relay_bits_saved comparison below.
        exec.set_columnar_wire(false);

        let (direct, md) = exec.execute(&join_plan()).unwrap();
        assert_eq!(md.partitioned_joins, 1, "{md:?}");
        assert_eq!(md.repartition_tasks, 4, "2 left + 2 right sources: {md:?}");
        assert!(
            md.shuffled_direct_bits > 0,
            "no fragment→fragment bits metered: {md:?}"
        );
        assert_eq!(
            md.relay_bits_saved,
            2 * md.shuffled_direct_bits,
            "every direct bit used to cross the coordinator twice: {md:?}"
        );
        assert_eq!(
            md.relayed_bits, 0,
            "direct shuffle must not relay buckets through the coordinator: {md:?}"
        );

        exec.set_streaming(false);
        let (relayed, mr) = exec.execute(&join_plan()).unwrap();
        // 2200 joined rows exist (keys 0..2200 intersect), so the result
        // is non-trivial.
        assert_eq!(direct.len(), 2200);
        assert_eq!(
            direct.canonicalized().tuples(),
            relayed.canonicalized().tuples(),
            "direct and relayed grace joins must agree"
        );
        assert_eq!(mr.shuffled_direct_bits, 0, "{mr:?}");
        assert!(mr.relayed_bits > 0, "the baseline relays buckets: {mr:?}");
        // The relay moves the same payload through the coordinator that
        // the direct path moves fragment→fragment (both count the bucket
        // rows entering + leaving the coordinator vs one direct hop).
        assert_eq!(mr.relayed_bits, md.relay_bits_saved, "{mr:?} vs {md:?}");
        runtime.shutdown();
    }

    #[test]
    fn relay_savings_stay_exact_under_one_sided_buckets() {
        // Disjoint key sets: every bucket holds rows from (at most) one
        // side, which the relay baseline receives but never re-ships
        // (`lb.is_empty() || rb.is_empty()` skips the pair). The
        // per-site accounting must agree with the baseline's relayed
        // bits exactly — not the naive 2× of everything shuffled.
        let (runtime, dict) = rig(30);
        register_fragmented(&runtime, &dict, "l", 0, &[0..3, 3..6]);
        register_fragmented(&runtime, &dict, "r", 10, &[100..103, 103..106]);
        let mut exec = ParallelExecutor::new(runtime.clone(), dict.clone());
        exec.set_physical_config(grace_config(Some(8)));
        // Row wire, for the same reason as the test above: the savings
        // figure is compared bit-for-bit against the row-based relay.
        exec.set_columnar_wire(false);

        let (direct, md) = exec.execute(&join_plan()).unwrap();
        assert!(direct.is_empty(), "disjoint keys join to nothing");
        assert!(md.shuffled_direct_bits > 0, "{md:?}");
        assert!(
            md.relay_bits_saved < 2 * md.shuffled_direct_bits,
            "one-sided buckets must not be double-counted: {md:?}"
        );
        assert!(
            md.relay_bits_saved >= md.shuffled_direct_bits,
            "everything shuffled crossed the coordinator at least once: {md:?}"
        );

        exec.set_streaming(false);
        let (_, mr) = exec.execute(&join_plan()).unwrap();
        assert_eq!(
            mr.relayed_bits, md.relay_bits_saved,
            "savings must equal what the baseline actually relays: {mr:?} vs {md:?}"
        );
        runtime.shutdown();
    }

    #[test]
    fn direct_shuffle_survives_bucket_count_fragment_count_mismatches() {
        let (runtime, dict) = rig(30);
        // Mismatched fragment counts: 2 left sites, 1 right source.
        register_fragmented(&runtime, &dict, "l", 0, &[0..900, 900..1800]);
        register_fragmented(&runtime, &dict, "r", 10, std::slice::from_ref(&(0..1300)));
        let mut exec = ParallelExecutor::new(runtime.clone(), dict.clone());

        // More buckets than fragments, fewer buckets than fragments, and
        // the default — all must agree.
        let mut results = Vec::new();
        for parts in [Some(7), Some(1), None] {
            exec.set_physical_config(grace_config(parts));
            let (rows, m) = exec.execute(&join_plan()).unwrap();
            assert_eq!(m.partitioned_joins, 1, "parts={parts:?}: {m:?}");
            assert_eq!(m.relayed_bits, 0, "parts={parts:?}: {m:?}");
            assert_eq!(rows.len(), 1300, "parts={parts:?}");
            results.push(rows.canonicalized());
        }
        assert_eq!(results[0].tuples(), results[1].tuples());
        assert_eq!(results[1].tuples(), results[2].tuples());
        runtime.shutdown();
    }

    #[test]
    fn fragment_failure_error_names_query_and_fragment() {
        let streams: StreamSet = vec![(0, FragmentId(3))];
        let e = fragment_failure(
            QueryId(9),
            &streams,
            0,
            &PrismaError::UnknownRelation("ghost".into()),
        );
        let msg = e.to_string();
        assert!(msg.contains("q9"), "{msg}");
        assert!(msg.contains("frag3"), "{msg}");
        assert!(msg.contains("ghost"), "{msg}");
    }
}
