//! The GDH ↔ OFM message protocol.
//!
//! Everything the supervisor asks of a One-Fragment Manager travels as a
//! message to the OFM's actor on its PE (no shared memory, paper §3.1);
//! results come back to the requester's mailbox. Each request carries a
//! `tag` so a coordinator fanning out to many fragments can match replies.

use std::collections::HashMap;
use std::sync::Arc;

use prisma_poolx::{Ctx, Process, WireMessage};
use prisma_relalg::{Batch, PhysicalPlan, Relation};
use prisma_storage::expr::ScalarExpr;
use prisma_types::{ProcessId, Result, Tuple, TxnId};

/// Messages of the PRISMA DBMS layer.
#[derive(Debug)]
pub enum GdhMsg {
    /// Execute a local physical subplan through the batch executor;
    /// `SeqScan(<relation name>)` reads the OFM's fragment, `extra`
    /// supplies shipped-in intermediates (`Arc`-shared, so a broadcast
    /// build side is one allocation no matter how many fragments receive
    /// it — the wire cost is still charged per message).
    RunSubplan {
        /// The physical subplan.
        plan: Box<PhysicalPlan>,
        /// Shipped-in relations by name (e.g. a broadcast build side).
        extra: HashMap<String, Arc<Relation>>,
        /// Where to send the result.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to `RunSubplan`: the fragment's partial result as the raw
    /// batch stream out of the executor.
    SubplanResult {
        /// Correlation tag.
        tag: u64,
        /// The fragment's batches (or the error).
        result: Result<Vec<Batch>>,
    },
    /// Grace-join phase 1: run the subplan and hash-partition its output
    /// on `key_cols` into `parts` buckets.
    Repartition {
        /// The physical subplan producing this side of the join.
        plan: Box<PhysicalPlan>,
        /// Join-key ordinals in the subplan's output.
        key_cols: Vec<usize>,
        /// Bucket count.
        parts: usize,
        /// Where to send the buckets.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to `Repartition`: one tuple bucket per partition.
    PartitionResult {
        /// Correlation tag.
        tag: u64,
        /// The buckets (or the error).
        result: Result<Vec<Vec<Tuple>>>,
    },
    /// Insert rows under a transaction.
    Insert {
        /// Transaction.
        txn: TxnId,
        /// Rows for this fragment.
        rows: Vec<Tuple>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Delete matching rows under a transaction.
    DeleteWhere {
        /// Transaction.
        txn: TxnId,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Update matching rows under a transaction.
    UpdateWhere {
        /// Transaction.
        txn: TxnId,
        /// `(column, expression over the old tuple)` assignments.
        assignments: Vec<(usize, ScalarExpr)>,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to DML requests: affected row count.
    DmlDone {
        /// Correlation tag.
        tag: u64,
        /// Rows affected (or the error).
        result: Result<usize>,
    },
    /// 2PC phase 1.
    Prepare {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// 2PC vote.
    Vote {
        /// Correlation tag.
        tag: u64,
        /// Yes/no plus simulated disk nanoseconds spent forcing the log.
        result: Result<u64>,
    },
    /// 2PC phase 2: commit.
    Commit {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Roll back a transaction's local effects.
    Abort {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Generic acknowledgement (commit/abort/index/checkpoint done).
    Ack {
        /// Correlation tag.
        tag: u64,
        /// Success, with simulated disk nanoseconds where applicable.
        result: Result<u64>,
    },
    /// Build an index on the fragment.
    CreateIndex {
        /// Column ordinal.
        column: usize,
        /// Hash (true) or B-tree.
        hash: bool,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Force a checkpoint (persistent OFMs).
    Checkpoint {
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
}

impl WireMessage for GdhMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            // Result shipping dominates communication; control messages
            // are a single packet.
            GdhMsg::SubplanResult {
                result: Ok(batches),
                ..
            } => {
                32 + batches
                    .iter()
                    .map(|b| (b.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::RunSubplan { extra, .. } => {
                64 + extra
                    .values()
                    .map(|r| (r.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Repartition { .. } => 64,
            GdhMsg::PartitionResult {
                result: Ok(buckets),
                ..
            } => {
                32 + buckets
                    .iter()
                    .flatten()
                    .map(|t| (t.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Insert { rows, .. } => {
                32 + rows.iter().map(|t| (t.wire_bits() / 8) as usize).sum::<usize>()
            }
            _ => 32,
        }
    }
}

/// The OFM actor: owns a One-Fragment Manager and serves the protocol.
pub struct OfmActor {
    ofm: prisma_ofm::Ofm,
}

impl OfmActor {
    /// Wrap an OFM as an actor.
    pub fn new(ofm: prisma_ofm::Ofm) -> Self {
        OfmActor { ofm }
    }
}

impl Process<GdhMsg> for OfmActor {
    fn handle(&mut self, msg: GdhMsg, ctx: &mut Ctx<'_, GdhMsg>) {
        match msg {
            GdhMsg::RunSubplan {
                plan,
                extra,
                reply_to,
                tag,
            } => {
                let result = self.ofm.execute_physical(&plan, &extra);
                let _ = ctx.send(reply_to, GdhMsg::SubplanResult { tag, result });
            }
            GdhMsg::Repartition {
                plan,
                key_cols,
                parts,
                reply_to,
                tag,
            } => {
                let result = self
                    .ofm
                    .execute_physical(&plan, &HashMap::new())
                    .map(|batches| {
                        prisma_relalg::exec::partition_batches(batches, &key_cols, parts)
                    });
                let _ = ctx.send(reply_to, GdhMsg::PartitionResult { tag, result });
            }
            GdhMsg::Insert {
                txn,
                rows,
                reply_to,
                tag,
            } => {
                let mut n = 0;
                let mut result = Ok(0);
                for row in rows {
                    match self.ofm.insert(txn, row) {
                        Ok(_) => n += 1,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                let result = result.map(|_| n);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::DeleteWhere {
                txn,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.delete_where(txn, &pred);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::UpdateWhere {
                txn,
                assignments,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.update_where(txn, &pred, &assignments);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::Prepare { txn, reply_to, tag } => {
                let result = self.ofm.prepare(txn);
                let _ = ctx.send(reply_to, GdhMsg::Vote { tag, result });
            }
            GdhMsg::Commit { txn, reply_to, tag } => {
                let result = self.ofm.commit(txn);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Abort { txn, reply_to, tag } => {
                let result = self.ofm.abort(txn).map(|_| 0);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::CreateIndex {
                column,
                hash,
                reply_to,
                tag,
            } => {
                let result = if hash {
                    self.ofm.fragment_mut().add_hash_index(vec![column])
                } else {
                    self.ofm.fragment_mut().add_btree_index(vec![column])
                }
                .map(|_| 0);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Checkpoint { reply_to, tag } => {
                let result = self.ofm.checkpoint();
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            // Replies arriving at an OFM are protocol errors; ignore.
            GdhMsg::SubplanResult { .. }
            | GdhMsg::PartitionResult { .. }
            | GdhMsg::DmlDone { .. }
            | GdhMsg::Vote { .. }
            | GdhMsg::Ack { .. } => {}
        }
    }
}
