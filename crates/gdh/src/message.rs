//! The GDH ↔ OFM message protocol.
//!
//! Everything the supervisor asks of a One-Fragment Manager travels as a
//! message to the OFM's actor on its PE (no shared memory, paper §3.1);
//! results come back to the requester's mailbox. Each request carries a
//! `tag` so a coordinator fanning out to many fragments can match replies.
//!
//! ## Streamed result shipping
//!
//! Query results do **not** come back as one reply. A [`GdhMsg::RunSubplan`]
//! opens a *batch stream*: the OFM ships every produced batch as its own
//! [`GdhMsg::BatchChunk`] (sequence-numbered per stream) the moment the
//! executor yields it, and terminates the stream with a
//! [`GdhMsg::StreamEnd`] carrying the chunk count and per-stream stats —
//! so the coordinator merges early batches while the fragment is still
//! scanning (pipelined parallelism across PEs, the paper's intra-query
//! parallelism applied to the exchange itself). Grace-join repartitioning
//! streams the same way: each produced batch is hash-partitioned on the
//! spot and shipped as a [`GdhMsg::PartitionChunk`]. The coordinator
//! reassembles per-stream order with
//! [`prisma_multicomputer::StreamReassembly`]; errors and timeouts are
//! reported per stream with the owning query and fragment named.

use std::collections::HashMap;
use std::sync::Arc;

use prisma_poolx::{Ctx, Process, WireMessage};
use prisma_relalg::{Batch, PhysicalPlan, Relation};
use prisma_storage::expr::ScalarExpr;
use prisma_types::{ProcessId, QueryId, Result, Tuple, TxnId};

/// Per-stream summary carried by the terminal [`GdhMsg::StreamEnd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows shipped on this stream.
    pub rows: u64,
}

/// Messages of the PRISMA DBMS layer.
#[derive(Debug)]
pub enum GdhMsg {
    /// Execute a local physical subplan through the batch executor and
    /// stream the result back as `BatchChunk`s + a terminal `StreamEnd`;
    /// `SeqScan(<relation name>)` reads the OFM's fragment, `extra`
    /// supplies shipped-in intermediates (`Arc`-shared, so a broadcast
    /// build side is one allocation no matter how many fragments receive
    /// it — the wire cost is still charged per message).
    RunSubplan {
        /// The query this stream belongs to.
        query_id: QueryId,
        /// The physical subplan.
        plan: Box<PhysicalPlan>,
        /// Shipped-in relations by name (e.g. a broadcast build side).
        extra: HashMap<String, Arc<Relation>>,
        /// Where to send the result stream.
        reply_to: ProcessId,
        /// Correlation tag (one stream per tag).
        tag: u64,
        /// Ship each batch as it is produced (true, the pipelined path)
        /// or run the subplan to completion before the first ship (the
        /// materialized baseline the E6 experiment compares against).
        stream: bool,
    },
    /// One batch of a `RunSubplan` reply stream.
    BatchChunk {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Position in the stream (0-based; consumers reassemble order).
        seq: u64,
        /// The batch, in row-oriented wire form.
        batch: Batch,
    },
    /// Grace-join phase 1: run the subplan and hash-partition its output
    /// on `key_cols` into `parts` buckets, streaming each produced
    /// batch's buckets as a `PartitionChunk`.
    Repartition {
        /// The query this stream belongs to.
        query_id: QueryId,
        /// The physical subplan producing this side of the join.
        plan: Box<PhysicalPlan>,
        /// Join-key ordinals in the subplan's output.
        key_cols: Vec<usize>,
        /// Bucket count.
        parts: usize,
        /// Where to send the bucket stream.
        reply_to: ProcessId,
        /// Correlation tag (one stream per tag).
        tag: u64,
        /// Per-batch bucket shipping (true) or materialize-then-ship.
        stream: bool,
    },
    /// One batch's worth of buckets from a `Repartition` reply stream.
    PartitionChunk {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Position in the stream (0-based).
        seq: u64,
        /// One (possibly empty) tuple bucket per partition.
        buckets: Vec<Vec<Tuple>>,
    },
    /// Terminal message of a `RunSubplan`/`Repartition` reply stream:
    /// how many chunks the stream comprised (so a coordinator can detect
    /// chunks still in flight even when this marker overtakes them) and
    /// the fragment's stats — or the fragment-local error.
    StreamEnd {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Chunks shipped before this marker.
        seq_count: u64,
        /// Per-stream stats, or the error that cut the stream short.
        result: Result<StreamStats>,
    },
    /// Insert rows under a transaction.
    Insert {
        /// Transaction.
        txn: TxnId,
        /// Rows for this fragment.
        rows: Vec<Tuple>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Delete matching rows under a transaction.
    DeleteWhere {
        /// Transaction.
        txn: TxnId,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Update matching rows under a transaction.
    UpdateWhere {
        /// Transaction.
        txn: TxnId,
        /// `(column, expression over the old tuple)` assignments.
        assignments: Vec<(usize, ScalarExpr)>,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to DML requests: affected row count.
    DmlDone {
        /// Correlation tag.
        tag: u64,
        /// Rows affected (or the error).
        result: Result<usize>,
    },
    /// 2PC phase 1.
    Prepare {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// 2PC vote.
    Vote {
        /// Correlation tag.
        tag: u64,
        /// Yes/no plus simulated disk nanoseconds spent forcing the log.
        result: Result<u64>,
    },
    /// 2PC phase 2: commit.
    Commit {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Roll back a transaction's local effects.
    Abort {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Generic acknowledgement (commit/abort/index/checkpoint done).
    Ack {
        /// Correlation tag.
        tag: u64,
        /// Success, with simulated disk nanoseconds where applicable.
        result: Result<u64>,
    },
    /// Build an index on the fragment.
    CreateIndex {
        /// Column ordinal.
        column: usize,
        /// Hash (true) or B-tree.
        hash: bool,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Force a checkpoint (persistent OFMs).
    Checkpoint {
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
}

impl WireMessage for GdhMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            // Result shipping dominates communication; control messages
            // are a single packet.
            GdhMsg::BatchChunk { batch, .. } => 32 + (batch.wire_bits() / 8) as usize,
            GdhMsg::RunSubplan { extra, .. } => {
                64 + extra
                    .values()
                    .map(|r| (r.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Repartition { .. } => 64,
            GdhMsg::PartitionChunk { buckets, .. } => {
                32 + buckets
                    .iter()
                    .flatten()
                    .map(|t| (t.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Insert { rows, .. } => {
                32 + rows.iter().map(|t| (t.wire_bits() / 8) as usize).sum::<usize>()
            }
            _ => 32,
        }
    }
}

/// The OFM actor: owns a One-Fragment Manager and serves the protocol.
pub struct OfmActor {
    ofm: prisma_ofm::Ofm,
}

impl OfmActor {
    /// Wrap an OFM as an actor.
    pub fn new(ofm: prisma_ofm::Ofm) -> Self {
        OfmActor { ofm }
    }
}

impl OfmActor {
    /// Run `plan` and ship its output as a chunk stream: one message per
    /// produced batch (mapped through `to_chunk`, which also reports how
    /// many rows the chunk carries — repartition chunks drop NULL-key
    /// rows, so the shipped count can differ from the produced count),
    /// then the terminal `StreamEnd` advertising the chunk count and the
    /// total rows shipped (the coordinator cross-checks both). With
    /// `stream = false` the subplan is drained fully before the first
    /// ship — the materialized baseline.
    ///
    /// Each `next_batch()`/`send` alternation is the pipelining seam:
    /// the send crosses the interconnect while this actor keeps scanning,
    /// so the coordinator's merge overlaps fragment execution.
    #[allow(clippy::too_many_arguments)]
    fn ship_stream(
        &self,
        plan: &PhysicalPlan,
        extra: &HashMap<String, Arc<Relation>>,
        reply_to: ProcessId,
        query_id: QueryId,
        tag: u64,
        stream: bool,
        ctx: &mut Ctx<'_, GdhMsg>,
        mut to_chunk: impl FnMut(u64, Batch) -> (u64, GdhMsg),
    ) {
        let end = |result, seq_count| GdhMsg::StreamEnd {
            query_id,
            tag,
            seq_count,
            result,
        };
        let mut source = match self.ofm.open_physical(plan, extra) {
            Ok(s) => s,
            Err(e) => {
                let _ = ctx.send(reply_to, end(Err(e), 0));
                return;
            }
        };
        let mut held = Vec::new(); // materialized mode parks chunks here
        let mut seq = 0u64;
        let mut rows = 0u64;
        loop {
            match source.next_batch() {
                Ok(Some(batch)) => {
                    let (chunk_rows, msg) = to_chunk(seq, batch.into_rows());
                    rows += chunk_rows;
                    if stream {
                        if ctx.send(reply_to, msg).is_err() {
                            return; // requester is gone; abandon the stream
                        }
                    } else {
                        held.push(msg);
                    }
                    seq += 1;
                }
                Ok(None) => {
                    for msg in held {
                        if ctx.send(reply_to, msg).is_err() {
                            return;
                        }
                    }
                    let _ = ctx.send(reply_to, end(Ok(StreamStats { rows }), seq));
                    return;
                }
                Err(e) => {
                    // Chunks already shipped stay valid; the error ends
                    // the stream (materialized mode ships nothing).
                    let shipped = if stream { seq } else { 0 };
                    let _ = ctx.send(reply_to, end(Err(e), shipped));
                    return;
                }
            }
        }
    }
}

impl Process<GdhMsg> for OfmActor {
    fn handle(&mut self, msg: GdhMsg, ctx: &mut Ctx<'_, GdhMsg>) {
        match msg {
            GdhMsg::RunSubplan {
                query_id,
                plan,
                extra,
                reply_to,
                tag,
                stream,
            } => {
                self.ship_stream(
                    &plan,
                    &extra,
                    reply_to,
                    query_id,
                    tag,
                    stream,
                    ctx,
                    |seq, batch| {
                        let rows = batch.len() as u64;
                        (
                            rows,
                            GdhMsg::BatchChunk {
                                query_id,
                                tag,
                                seq,
                                batch,
                            },
                        )
                    },
                );
            }
            GdhMsg::Repartition {
                query_id,
                plan,
                key_cols,
                parts,
                reply_to,
                tag,
                stream,
            } => {
                // Buckets ship per produced batch: partition each batch
                // on the spot instead of materializing the whole side.
                self.ship_stream(
                    &plan,
                    &HashMap::new(),
                    reply_to,
                    query_id,
                    tag,
                    stream,
                    ctx,
                    |seq, batch| {
                        let buckets = prisma_relalg::exec::partition_batches(
                            vec![batch],
                            &key_cols,
                            parts,
                        );
                        // NULL-key rows were dropped: advertise what ships.
                        let rows = buckets.iter().map(|b| b.len() as u64).sum();
                        (
                            rows,
                            GdhMsg::PartitionChunk {
                                query_id,
                                tag,
                                seq,
                                buckets,
                            },
                        )
                    },
                );
            }
            GdhMsg::Insert {
                txn,
                rows,
                reply_to,
                tag,
            } => {
                let mut n = 0;
                let mut result = Ok(0);
                for row in rows {
                    match self.ofm.insert(txn, row) {
                        Ok(_) => n += 1,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                let result = result.map(|_| n);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::DeleteWhere {
                txn,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.delete_where(txn, &pred);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::UpdateWhere {
                txn,
                assignments,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.update_where(txn, &pred, &assignments);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::Prepare { txn, reply_to, tag } => {
                let result = self.ofm.prepare(txn);
                let _ = ctx.send(reply_to, GdhMsg::Vote { tag, result });
            }
            GdhMsg::Commit { txn, reply_to, tag } => {
                let result = self.ofm.commit(txn);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Abort { txn, reply_to, tag } => {
                let result = self.ofm.abort(txn).map(|_| 0);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::CreateIndex {
                column,
                hash,
                reply_to,
                tag,
            } => {
                let result = if hash {
                    self.ofm.fragment_mut().add_hash_index(vec![column])
                } else {
                    self.ofm.fragment_mut().add_btree_index(vec![column])
                }
                .map(|_| 0);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Checkpoint { reply_to, tag } => {
                let result = self.ofm.checkpoint();
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            // Replies arriving at an OFM are protocol errors; ignore.
            GdhMsg::BatchChunk { .. }
            | GdhMsg::PartitionChunk { .. }
            | GdhMsg::StreamEnd { .. }
            | GdhMsg::DmlDone { .. }
            | GdhMsg::Vote { .. }
            | GdhMsg::Ack { .. } => {}
        }
    }
}
