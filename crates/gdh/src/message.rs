//! The GDH ↔ OFM message protocol.
//!
//! Everything the supervisor asks of a One-Fragment Manager travels as a
//! message to the OFM's actor on its PE (no shared memory, paper §3.1);
//! results come back to the requester's mailbox. Each request carries a
//! `tag` so a coordinator fanning out to many fragments can match replies.
//!
//! ## Streamed result shipping
//!
//! Query results do **not** come back as one reply. A [`GdhMsg::RunSubplan`]
//! opens a *batch stream*: the OFM ships every produced batch as its own
//! [`GdhMsg::BatchChunk`] (sequence-numbered per stream) the moment the
//! executor yields it, and terminates the stream with a
//! [`GdhMsg::StreamEnd`] carrying the chunk count and per-stream stats —
//! so the coordinator merges early batches while the fragment is still
//! scanning (pipelined parallelism across PEs, the paper's intra-query
//! parallelism applied to the exchange itself). Grace-join repartitioning
//! streams the same way: each produced batch is hash-partitioned on the
//! spot and shipped as a [`GdhMsg::PartitionChunk`]. The coordinator
//! reassembles per-stream order with
//! [`prisma_multicomputer::StreamReassembly`]; errors and timeouts are
//! reported per stream with the owning query and fragment named.
//!
//! ## Direct fragment→fragment shuffle (grace joins)
//!
//! With streaming on, grace-join buckets never touch the coordinator:
//! the coordinator installs one [`GdhMsg::ShuffleJoin`] task per phase-2
//! site (a fragment actor of the probe relation, chosen by the
//! optimizer's shuffle placement map) and sends both sides'
//! [`GdhMsg::ShuffleSubplan`]s. Each source fragment hash-partitions
//! every produced batch and addresses bucket `j`'s rows **straight at
//! the site owning bucket `j`** as a [`GdhMsg::ShuffleChunk`] — one
//! sequence-numbered stream per `(source, site)` pair, each terminated
//! by a per-site [`GdhMsg::ShuffleEnd`]. The receiving OFM actor
//! reassembles the peer streams with the same
//! [`prisma_multicomputer::StreamReassembly`] the coordinator uses,
//! runs the bucket join locally once every stream completed, and
//! streams the join result to the coordinator as an ordinary
//! `BatchChunk`/`StreamEnd` reply whose stats carry the
//! fragment→fragment bits received ([`StreamStats::shuffled_bits`]).
//! The coordinator-relay path survives behind `stream: false` as the
//! measured baseline (E7).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use prisma_multicomputer::StreamReassembly;
use prisma_ofm::shuffle_extras;
use prisma_poolx::{Ctx, Process, WireMessage};
use prisma_relalg::{Batch, PhysicalPlan, Relation};
use prisma_storage::expr::ScalarExpr;
use prisma_types::{
    FragmentId, FragmentStatistics, PrismaError, ProcessId, QueryId, Result, Schema, Tuple,
    TxnId,
};

/// Per-stream summary carried by the terminal [`GdhMsg::StreamEnd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows shipped on this stream.
    pub rows: u64,
    /// Bits this reply's producer received fragment→fragment over the
    /// direct shuffle (0 for ordinary subplan streams) — what the
    /// coordinator folds into `ExecMetrics::shuffled_direct_bits`.
    pub shuffled_bits: u64,
    /// Coordinator bits the direct shuffle avoided for this site's
    /// buckets: every received bit would have crossed to the
    /// coordinator once, and the bits of **two-sided** buckets would
    /// have been re-shipped back out (the relay skips one-sided
    /// buckets, which join to nothing) — so this is `shuffled_bits +
    /// Σ(two-sided bucket bits)`, matching the relay baseline's
    /// `relayed_bits` exactly.
    pub relay_saved_bits: u64,
}

/// Which side of a partitioned join a shuffle stream feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShuffleSide {
    /// The probe side (`__shuffle_l`).
    Left,
    /// The build side (`__shuffle_r`).
    Right,
}

/// Payload of one shipped data chunk — the wire-format seam.
///
/// The columnar wire ([`ChunkData::Blocks`]) ships each batch as one
/// encoded [`prisma_types::wire::BlockChunk`]: typed per-column blocks
/// with null bitmaps and cheap compression, decoded on the receive side
/// straight into `ColumnVec`s (no pivot on either end). The legacy row
/// wire ([`ChunkData::Rows`]) survives behind the executor's
/// `set_columnar_wire(false)` / `PRISMA_ROW_WIRE=1` flag as the measured
/// baseline (E11), shipping the batch pivoted to tagged-`Value` rows.
#[derive(Debug, Clone)]
pub enum ChunkData {
    /// Row wire: the batch in row-oriented form.
    Rows(Batch),
    /// Columnar wire: the batch as one encoded column-block frame,
    /// `Arc`-shared so a sealed chunk's **cached** wire block ships
    /// without copying the frame (re-ships of unmutated cold data are
    /// refcount bumps — the encoder never re-runs).
    Blocks {
        /// The encoded frame — what the interconnect meters and what the
        /// fault injector's bit damage lands on.
        frame: std::sync::Arc<prisma_types::wire::BlockChunk>,
        /// In-process delivery shortcut: when `frame` is a sealed chunk's
        /// cached wire block, the chunk rides along and the receiver
        /// serves its columns directly instead of re-decoding its own
        /// shared frame (the columnar twin of the row wire's
        /// refcount-bump ship). Dropped on corruption so injected bit
        /// damage is always seen by the decoder.
        sealed: Option<std::sync::Arc<prisma_types::SealedChunk>>,
    },
}

impl ChunkData {
    /// Encode a produced batch for the wire — the sender-side seam where
    /// the format flag takes effect. Batches that are whole sealed chunks
    /// reuse the chunk's cached block frame.
    pub fn from_batch(batch: Batch, columnar: bool) -> ChunkData {
        if columnar {
            ChunkData::Blocks {
                sealed: batch.sealed_chunk().cloned(),
                frame: batch.encode_columnar_shared(),
            }
        } else {
            ChunkData::Rows(batch.into_rows())
        }
    }

    /// Rows this chunk carries (from the frame header for blocks — no
    /// decode needed for stream accounting).
    pub fn rows(&self) -> u64 {
        match self {
            ChunkData::Rows(batch) => batch.len() as u64,
            ChunkData::Blocks { frame, .. } => frame.rows() as u64,
        }
    }

    /// Size on the metered interconnect, in bits: the tuple wire size for
    /// the row form, the encoded frame size for blocks — so the traffic
    /// ledger and shuffle stats meter whichever format actually shipped.
    pub fn wire_bits(&self) -> u64 {
        match self {
            ChunkData::Rows(batch) => batch.wire_bits(),
            ChunkData::Blocks { frame, .. } => frame.wire_bits(),
        }
    }

    /// Decode into a batch. Row payloads pass through; block payloads
    /// decode into a columnar batch feeding the merge kernels directly.
    /// A mangled frame returns a `wire:` protocol error — never a panic,
    /// never silently wrong rows.
    pub fn into_batch(self) -> Result<Batch> {
        match self {
            ChunkData::Rows(batch) => Ok(batch),
            ChunkData::Blocks {
                sealed: Some(chunk),
                ..
            } => Ok(Batch::from_sealed_chunk(&chunk, None)),
            ChunkData::Blocks { frame, sealed: None } => Batch::from_block(&frame),
        }
    }

    /// Decode into materialized tuples (the shuffle receiver's build/probe
    /// collections are row-keyed relations).
    pub fn into_tuples(self) -> Result<Vec<Tuple>> {
        self.into_batch().map(Batch::into_tuples)
    }

    /// Mangle the payload in flight (the fault injector's
    /// `ChunkFate::Corrupt`). Only encoded frames can take bit damage —
    /// row payloads are in-memory typed values with no byte form to flip,
    /// so the row wire delivers them unchanged. Shared frames (a sealed
    /// chunk's cached block) are copied-on-write first, so corruption
    /// never leaks back into the sender's cache.
    pub fn corrupt_in_place(&mut self, seed: u64) {
        if let ChunkData::Blocks { frame, sealed } = self {
            std::sync::Arc::make_mut(frame).corrupt_in_place(seed);
            // The shortcut must not mask the damage: force the receiver
            // through the decoder, which rejects the mangled frame.
            *sealed = None;
        }
    }
}

/// Messages of the PRISMA DBMS layer.
#[derive(Debug)]
pub enum GdhMsg {
    /// Execute a local physical subplan through the batch executor and
    /// stream the result back as `BatchChunk`s + a terminal `StreamEnd`;
    /// `SeqScan(<relation name>)` reads the OFM's fragment, `extra`
    /// supplies shipped-in intermediates (`Arc`-shared, so a broadcast
    /// build side is one allocation no matter how many fragments receive
    /// it — the wire cost is still charged per message).
    RunSubplan {
        /// The query this stream belongs to.
        query_id: QueryId,
        /// The physical subplan.
        plan: Box<PhysicalPlan>,
        /// Shipped-in relations by name (e.g. a broadcast build side).
        extra: HashMap<String, Arc<Relation>>,
        /// Where to send the result stream.
        reply_to: ProcessId,
        /// Correlation tag (one stream per tag).
        tag: u64,
        /// Ship each batch as it is produced (true, the pipelined path)
        /// or run the subplan to completion before the first ship (the
        /// materialized baseline the E6 experiment compares against).
        stream: bool,
        /// Ship batches as encoded column blocks (true) or legacy rows.
        columnar: bool,
    },
    /// One batch of a `RunSubplan` reply stream.
    BatchChunk {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Position in the stream (0-based; consumers reassemble order).
        seq: u64,
        /// The batch payload in its wire form (column blocks or rows).
        data: ChunkData,
    },
    /// Grace-join phase 1: run the subplan and hash-partition its output
    /// on `key_cols` into `parts` buckets, streaming each produced
    /// batch's buckets as a `PartitionChunk`.
    Repartition {
        /// The query this stream belongs to.
        query_id: QueryId,
        /// The physical subplan producing this side of the join.
        plan: Box<PhysicalPlan>,
        /// Join-key ordinals in the subplan's output.
        key_cols: Vec<usize>,
        /// Bucket count.
        parts: usize,
        /// Where to send the bucket stream.
        reply_to: ProcessId,
        /// Correlation tag (one stream per tag).
        tag: u64,
        /// Per-batch bucket shipping (true) or materialize-then-ship.
        stream: bool,
    },
    /// One batch's worth of buckets from a `Repartition` reply stream.
    PartitionChunk {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Position in the stream (0-based).
        seq: u64,
        /// One (possibly empty) tuple bucket per partition.
        buckets: Vec<Vec<Tuple>>,
    },
    /// Terminal message of a `RunSubplan`/`Repartition` reply stream:
    /// how many chunks the stream comprised (so a coordinator can detect
    /// chunks still in flight even when this marker overtakes them) and
    /// the fragment's stats — or the fragment-local error.
    StreamEnd {
        /// The owning query.
        query_id: QueryId,
        /// Correlation tag of the stream.
        tag: u64,
        /// Chunks shipped before this marker.
        seq_count: u64,
        /// Per-stream stats, or the error that cut the stream short.
        result: Result<StreamStats>,
    },
    /// Grace-join phase 1 with **direct shuffle**: run the subplan,
    /// hash-partition every produced batch on `key_cols` into
    /// `sites.len()` buckets, and ship bucket `j`'s rows straight to
    /// `sites[j]` — the phase-2 site actor — as `ShuffleChunk`s. The
    /// coordinator orchestrates but never relays tuples. One stream per
    /// `(this source, site)` pair; each ends with a per-site
    /// `ShuffleEnd`.
    ShuffleSubplan {
        /// The query this shuffle belongs to.
        query_id: QueryId,
        /// Exchange id: one per partitioned join of the query, so chunk
        /// routing survives several shuffles per query.
        exchange: u32,
        /// The physical subplan producing this side of the join.
        plan: Box<PhysicalPlan>,
        /// Join-key ordinals in the subplan's output.
        key_cols: Vec<usize>,
        /// Phase-2 site actor per bucket (`sites.len()` = bucket count).
        sites: Vec<ProcessId>,
        /// Failover re-issue: ship **only** to this site actor and skip
        /// every other slot silently — buckets owned by surviving sites
        /// were already delivered and must not arrive twice. `None` (the
        /// normal fan-out) ships every bucket.
        restrict_to: Option<ProcessId>,
        /// Which side of the join this source feeds.
        side: ShuffleSide,
        /// Source stream tag (unique per side across the fan-out).
        tag: u64,
        /// Ship buckets as encoded column blocks (true) or legacy rows.
        columnar: bool,
    },
    /// One produced batch's bucket payloads for one site, shipped
    /// fragment→fragment (never through the coordinator).
    ShuffleChunk {
        /// The owning query.
        query_id: QueryId,
        /// The owning exchange.
        exchange: u32,
        /// Join side of the source stream.
        side: ShuffleSide,
        /// Source stream tag.
        tag: u64,
        /// Position in the `(source, site)` stream (0-based; each site
        /// reassembles its own sequence).
        seq: u64,
        /// `(bucket, payload)` pairs owned by the receiving site.
        buckets: Vec<(usize, ChunkData)>,
    },
    /// Terminal marker of one `(source, site)` shuffle stream: the chunk
    /// count this site was sent and the rows shipped to it — or the
    /// source-local error, which the site forwards to the coordinator
    /// through its reply stream.
    ShuffleEnd {
        /// The owning query.
        query_id: QueryId,
        /// The owning exchange.
        exchange: u32,
        /// Join side of the source stream.
        side: ShuffleSide,
        /// Source stream tag.
        tag: u64,
        /// Chunks shipped to this site before the marker.
        seq_count: u64,
        /// Rows shipped to this site, or the error cutting the side off.
        result: Result<StreamStats>,
    },
    /// Install a grace-join phase-2 task at a site actor: collect the
    /// addressed bucket streams from every source fragment of both
    /// sides, then run `plan` (a hash join over the collected
    /// `__shuffle_l`/`__shuffle_r` buckets) locally and stream the
    /// result to `reply_to` as an ordinary `BatchChunk`/`StreamEnd`
    /// reply.
    ShuffleJoin {
        /// The owning query.
        query_id: QueryId,
        /// The owning exchange.
        exchange: u32,
        /// The site-local join over the collected buckets.
        plan: Box<PhysicalPlan>,
        /// Schema of the left (probe) bucket rows.
        lschema: Schema,
        /// Schema of the right (build) bucket rows.
        rschema: Schema,
        /// Buckets this site owns (chunks for any other bucket are a
        /// protocol error).
        buckets: Vec<usize>,
        /// Expected left-side source stream tags.
        left_streams: Vec<u64>,
        /// Expected right-side source stream tags.
        right_streams: Vec<u64>,
        /// Where to stream the join result.
        reply_to: ProcessId,
        /// Correlation tag of the reply stream.
        tag: u64,
        /// Ship the join result per batch (true) or materialized.
        stream: bool,
        /// Ship the reply stream as encoded column blocks (true) or rows.
        columnar: bool,
    },
    /// Insert rows under a transaction.
    Insert {
        /// Transaction.
        txn: TxnId,
        /// Rows for this fragment.
        rows: Vec<Tuple>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Delete matching rows under a transaction.
    DeleteWhere {
        /// Transaction.
        txn: TxnId,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Update matching rows under a transaction.
    UpdateWhere {
        /// Transaction.
        txn: TxnId,
        /// `(column, expression over the old tuple)` assignments.
        assignments: Vec<(usize, ScalarExpr)>,
        /// Predicate (None = all rows).
        predicate: Option<ScalarExpr>,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to DML requests: affected row count.
    DmlDone {
        /// Correlation tag.
        tag: u64,
        /// Rows affected (or the error).
        result: Result<usize>,
    },
    /// 2PC phase 1.
    Prepare {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// 2PC vote.
    Vote {
        /// Correlation tag.
        tag: u64,
        /// Yes/no plus simulated disk nanoseconds spent forcing the log.
        result: Result<u64>,
    },
    /// 2PC phase 2: commit.
    Commit {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Roll back a transaction's local effects.
    Abort {
        /// Transaction.
        txn: TxnId,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Generic acknowledgement (commit/abort/index/checkpoint done).
    Ack {
        /// Correlation tag.
        tag: u64,
        /// Success, with simulated disk nanoseconds where applicable.
        result: Result<u64>,
    },
    /// Build an index on the fragment.
    CreateIndex {
        /// Column ordinal.
        column: usize,
        /// Hash (true) or B-tree.
        hash: bool,
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Force a checkpoint (persistent OFMs).
    Checkpoint {
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Log-shipping: a batch of redo records from a replicated primary
    /// OFM to its backup replica on a distinct PE, in primary log order
    /// (the runtime's FIFO channels preserve it on the wire). Mutations
    /// are buffered on the backup per transaction and only applied when
    /// that transaction's `Commit` record arrives, so an aborted primary
    /// transaction never surfaces on the backup.
    ReplicaAppend {
        /// The replicated fragment (backup sanity-checks it owns it).
        fragment: FragmentId,
        /// Redo records in primary log order.
        records: Vec<prisma_stable::LogPayload>,
        /// When true the batch carries a 2PC commit record and the
        /// backup must acknowledge with [`GdhMsg::ReplicaAck`] before
        /// the primary forwards its commit `Ack` upstream — after the
        /// ack, either copy can serve the committed data.
        ack: bool,
        /// The primary actor (where the ack goes).
        reply_to: ProcessId,
        /// Correlation tag (the committing transaction's id).
        tag: u64,
    },
    /// Backup's acknowledgement that a shipped batch — through its
    /// commit record — is applied.
    ReplicaAck {
        /// Correlation tag echoed from the append.
        tag: u64,
        /// Transactions made durable on the backup, or the apply error.
        result: Result<usize>,
    },
    /// Ask the OFM for its fragment's statistics snapshot — the pull
    /// side of the statistics lifecycle: the GDH fans this out on
    /// `refresh_stats` and the dictionary caches the replies per
    /// `(relation, fragment)` with a staleness epoch. Only the summary
    /// travels; the data never leaves the fragment.
    CollectStats {
        /// Reply address.
        reply_to: ProcessId,
        /// Correlation tag.
        tag: u64,
    },
    /// Reply to [`GdhMsg::CollectStats`]: the fragment's per-column
    /// statistics (row count, distinct/min/max, equi-depth histograms,
    /// most-common values), computed from the OFM's incrementally
    /// maintained sketches.
    StatsReport {
        /// Correlation tag.
        tag: u64,
        /// The reporting fragment.
        fragment: FragmentId,
        /// The statistics snapshot.
        stats: Box<FragmentStatistics>,
    },
}

impl WireMessage for GdhMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            // Result shipping dominates communication; control messages
            // are a single packet. Data chunks are charged for whichever
            // wire form they actually carry — encoded block frames meter
            // their real (compressed) size.
            GdhMsg::BatchChunk { data, .. } => 32 + (data.wire_bits() / 8) as usize,
            GdhMsg::RunSubplan { extra, .. } => {
                64 + extra
                    .values()
                    .map(|r| (r.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Repartition { .. } => 64,
            GdhMsg::PartitionChunk { buckets, .. } => {
                32 + buckets
                    .iter()
                    .flatten()
                    .map(|t| (t.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::ShuffleSubplan { .. } | GdhMsg::ShuffleJoin { .. } => 64,
            GdhMsg::ShuffleChunk { buckets, .. } => {
                32 + buckets
                    .iter()
                    .map(|(_, data)| (data.wire_bits() / 8) as usize)
                    .sum::<usize>()
            }
            GdhMsg::Insert { rows, .. } => {
                32 + rows.iter().map(|t| (t.wire_bits() / 8) as usize).sum::<usize>()
            }
            // A stats report ships bounded summaries (histogram buckets
            // + most-common values), never tuples.
            GdhMsg::StatsReport { stats, .. } => stats.wire_bytes(),
            // Log shipping moves the mutated tuples once more across
            // the interconnect — charged like any other data message.
            GdhMsg::ReplicaAppend { records, .. } => {
                32 + records
                    .iter()
                    .map(|r| match r {
                        prisma_stable::LogPayload::Insert { tuple, .. }
                        | prisma_stable::LogPayload::Delete { tuple, .. } => {
                            (tuple.wire_bits() / 8) as usize
                        }
                        _ => 8,
                    })
                    .sum::<usize>()
            }
            _ => 32,
        }
    }
}

/// Chunk payload of one `(source, site)` shuffle stream: the receiving
/// site's `(bucket, payload)` pairs from one produced batch.
type ShufflePayload = Vec<(usize, ChunkData)>;

/// One join side's peer streams reassembling at a phase-2 site.
struct ShuffleSideState {
    reassembly: StreamReassembly<ShufflePayload>,
    /// Rows released from reassembly per source stream.
    released: HashMap<u64, u64>,
    /// Rows each source advertised in its per-site `ShuffleEnd`.
    advertised: HashMap<u64, u64>,
    /// The collected bucket rows (bucket identity is irrelevant once
    /// ownership is checked — the site joins all its buckets in one
    /// build).
    rows: Vec<Tuple>,
}

impl ShuffleSideState {
    fn expecting(tags: &[u64]) -> ShuffleSideState {
        ShuffleSideState {
            reassembly: StreamReassembly::expecting(tags.iter().copied()),
            released: HashMap::new(),
            advertised: HashMap::new(),
            rows: Vec::new(),
        }
    }
}

/// A phase-2 shuffle-join task installed at a site actor.
struct ShuffleTask {
    plan: Box<PhysicalPlan>,
    lschema: Schema,
    rschema: Schema,
    /// Buckets this site owns — a chunk naming any other bucket is a
    /// protocol error.
    owned: HashSet<usize>,
    reply_to: ProcessId,
    tag: u64,
    stream: bool,
    /// Wire format of the reply stream to the coordinator.
    columnar: bool,
    left: ShuffleSideState,
    right: ShuffleSideState,
    /// Bits received fragment→fragment, reported to the coordinator in
    /// the reply's [`StreamStats::shuffled_bits`].
    shuffled_bits: u64,
    /// Received bits per `(bucket, side)` — at completion, buckets with
    /// both sides non-empty are the ones the relay baseline would have
    /// re-shipped ([`StreamStats::relay_saved_bits`]).
    bucket_bits: HashMap<usize, [u64; 2]>,
}

impl ShuffleTask {
    fn side_mut(&mut self, side: ShuffleSide) -> &mut ShuffleSideState {
        match side {
            ShuffleSide::Left => &mut self.left,
            ShuffleSide::Right => &mut self.right,
        }
    }

    fn all_streams_complete(&self) -> bool {
        self.left.reassembly.all_complete() && self.right.reassembly.all_complete()
    }
}

/// Per-exchange shuffle state at a site actor.
enum ShuffleState {
    /// Peer traffic that raced ahead of the `ShuffleJoin` spec (the
    /// runtime's FIFO channels make this rare; buffered verbatim and
    /// replayed once the spec lands).
    Pending(Vec<GdhMsg>),
    /// The installed task, accumulating peer streams.
    Active(Box<ShuffleTask>),
}

/// The OFM actor: owns a One-Fragment Manager and serves the protocol —
/// including the phase-2 **shuffle receiver** role: collecting addressed
/// grace-join bucket streams from peer fragments and joining them
/// locally.
pub struct OfmActor {
    ofm: prisma_ofm::Ofm,
    /// Backup replica actor this primary ships its redo log to
    /// (`None` = unreplicated).
    replica: Option<ProcessId>,
    /// Commit acks gated on the backup: txn id → the upstream
    /// `(coordinator, tag, local commit result)` to forward once the
    /// backup's [`GdhMsg::ReplicaAck`] lands.
    awaiting_replica: HashMap<u64, (ProcessId, u64, Result<u64>)>,
    /// Fault injection hooks (inert unless a test or `FAULT_SEED`
    /// scripted them — one atomic load on the hot path).
    faults: Arc<prisma_faultx::FaultInjector>,
    /// In-flight shuffle-join tasks, keyed by `(query, exchange)`.
    shuffles: HashMap<(QueryId, u32), ShuffleState>,
    /// Recently finished (completed or torn down) shuffles: late peer
    /// traffic for these is dropped instead of accumulating as a
    /// pending buffer that no spec will ever claim. Bounded FIFO.
    finished: HashSet<(QueryId, u32)>,
    finished_order: std::collections::VecDeque<(QueryId, u32)>,
}

/// How many finished-shuffle tombstones an OFM actor remembers (late
/// traffic outlives its exchange by at most a few mailbox rounds, so a
/// small window suffices).
const FINISHED_SHUFFLES_REMEMBERED: usize = 256;

impl OfmActor {
    /// Wrap an OFM as an actor (process-wide fault injector, which is
    /// inert unless `FAULT_SEED` is set).
    pub fn new(ofm: prisma_ofm::Ofm) -> Self {
        Self::with_faults(ofm, prisma_faultx::global().clone())
    }

    /// Wrap an OFM as an actor with an explicit fault injector (tests
    /// script faults per run instead of per process).
    pub fn with_faults(
        ofm: prisma_ofm::Ofm,
        faults: Arc<prisma_faultx::FaultInjector>,
    ) -> Self {
        OfmActor {
            ofm,
            replica: None,
            awaiting_replica: HashMap::new(),
            faults,
            shuffles: HashMap::new(),
            finished: HashSet::new(),
            finished_order: std::collections::VecDeque::new(),
        }
    }

    /// Declare this actor the replicated primary: redo records are
    /// captured and shipped to `backup` ([`GdhMsg::ReplicaAppend`]), and
    /// 2PC commit acks are gated on the backup's acknowledgement.
    pub fn with_replica(mut self, backup: ProcessId) -> Self {
        self.ofm.enable_replication();
        self.replica = Some(backup);
        self
    }

    /// Ship captured redo records to the backup replica. With
    /// `require_ack` the batch carries a commit record the backup must
    /// acknowledge; returns whether an acked batch is now in flight.
    fn ship_replica_batch(
        &mut self,
        ctx: &mut Ctx<'_, GdhMsg>,
        require_ack: bool,
        txn: TxnId,
    ) -> bool {
        let Some(backup) = self.replica else {
            return false;
        };
        let records = self.ofm.drain_replica_records();
        if records.is_empty() && !require_ack {
            return false;
        }
        let msg = GdhMsg::ReplicaAppend {
            fragment: self.ofm.fragment_id(),
            records,
            ack: require_ack,
            reply_to: ctx.self_id,
            tag: txn.index() as u64,
        };
        ctx.send(backup, msg).is_ok() && require_ack
    }

    fn note_shuffle_finished(&mut self, key: (QueryId, u32)) {
        if self.finished.insert(key) {
            self.finished_order.push_back(key);
            if self.finished_order.len() > FINISHED_SHUFFLES_REMEMBERED {
                if let Some(old) = self.finished_order.pop_front() {
                    self.finished.remove(&old);
                }
            }
        }
    }
}

impl OfmActor {
    /// Run `plan` and ship its output as a chunk stream: one message per
    /// produced batch (mapped through `to_chunk`, which also reports how
    /// many rows the chunk carries — repartition chunks drop NULL-key
    /// rows, so the shipped count can differ from the produced count),
    /// then the terminal `StreamEnd` advertising the chunk count and the
    /// total rows shipped (the coordinator cross-checks both). With
    /// `stream = false` the subplan is drained fully before the first
    /// ship — the materialized baseline.
    ///
    /// Each `next_batch()`/`send` alternation is the pipelining seam:
    /// the send crosses the interconnect while this actor keeps scanning,
    /// so the coordinator's merge overlaps fragment execution.
    #[allow(clippy::too_many_arguments)]
    fn ship_stream(
        &self,
        plan: &PhysicalPlan,
        extra: &HashMap<String, Arc<Relation>>,
        reply_to: ProcessId,
        query_id: QueryId,
        tag: u64,
        stream: bool,
        base_stats: StreamStats,
        ctx: &mut Ctx<'_, GdhMsg>,
        mut to_chunk: impl FnMut(u64, Batch) -> (u64, GdhMsg),
    ) {
        let end = |result, seq_count| GdhMsg::StreamEnd {
            query_id,
            tag,
            seq_count,
            result,
        };
        let mut source = match self.ofm.open_physical(plan, extra) {
            Ok(s) => s,
            Err(e) => {
                let _ = ctx.send(reply_to, end(Err(e), 0));
                return;
            }
        };
        let mut held = Vec::new(); // materialized mode parks chunks here
        let mut held_back = Vec::new(); // fault-delayed chunks
        let mut seq = 0u64;
        let mut rows = 0u64;
        loop {
            match source.next_batch() {
                Ok(Some(batch)) => {
                    // The batch reaches `to_chunk` in whatever form the
                    // executor produced; the closure picks the wire form
                    // (encoded column blocks or pivoted rows).
                    let (chunk_rows, msg) = to_chunk(seq, batch);
                    rows += chunk_rows;
                    if stream {
                        if self.faulted_send(ctx, reply_to, msg, &mut held_back).is_err() {
                            return; // requester is gone; abandon the stream
                        }
                    } else {
                        held.push(msg);
                    }
                    seq += 1;
                }
                Ok(None) => {
                    for msg in held {
                        if self.faulted_send(ctx, reply_to, msg, &mut held_back).is_err() {
                            return;
                        }
                    }
                    if self.flush_held(ctx, &mut held_back).is_err() {
                        return;
                    }
                    let _ = ctx.send(
                        reply_to,
                        end(
                            Ok(StreamStats {
                                rows,
                                ..base_stats
                            }),
                            seq,
                        ),
                    );
                    return;
                }
                Err(e) => {
                    // Chunks already shipped stay valid; the error ends
                    // the stream (materialized mode ships nothing).
                    let _ = self.flush_held(ctx, &mut held_back);
                    let shipped = if stream { seq } else { 0 };
                    let _ = ctx.send(reply_to, end(Err(e), shipped));
                    return;
                }
            }
        }
    }
}

impl OfmActor {
    /// Clone a data chunk for scripted duplicate delivery (control
    /// messages are never duplicated).
    fn clone_chunk(msg: &GdhMsg) -> Option<GdhMsg> {
        match msg {
            GdhMsg::BatchChunk {
                query_id,
                tag,
                seq,
                data,
            } => Some(GdhMsg::BatchChunk {
                query_id: *query_id,
                tag: *tag,
                seq: *seq,
                data: data.clone(),
            }),
            GdhMsg::PartitionChunk {
                query_id,
                tag,
                seq,
                buckets,
            } => Some(GdhMsg::PartitionChunk {
                query_id: *query_id,
                tag: *tag,
                seq: *seq,
                buckets: buckets.clone(),
            }),
            GdhMsg::ShuffleChunk {
                query_id,
                exchange,
                side,
                tag,
                seq,
                buckets,
            } => Some(GdhMsg::ShuffleChunk {
                query_id: *query_id,
                exchange: *exchange,
                side: *side,
                tag: *tag,
                seq: *seq,
                buckets: buckets.clone(),
            }),
            _ => None,
        }
    }

    /// Mangle a data chunk's encoded payload (the `Corrupt` chunk fate):
    /// wire bit damage between the sender's encode and the receiver's
    /// decode. Only columnar-wire payloads have bytes to damage; the
    /// receiver must reject the frame with a protocol error.
    fn corrupt_chunk(msg: &mut GdhMsg) {
        match msg {
            GdhMsg::BatchChunk { seq, data, .. } => data.corrupt_in_place(*seq),
            GdhMsg::ShuffleChunk { seq, buckets, .. } => {
                if let Some((_, data)) = buckets.first_mut() {
                    data.corrupt_in_place(*seq);
                }
            }
            _ => {}
        }
    }

    /// Ship one stream chunk through the fault injector's chunk hook: a
    /// scripted fault can drop it on the floor, deliver it twice, mangle
    /// its encoded payload, or hold it back so a later chunk overtakes
    /// it — a local reorder the receiver's reassembly buffer absorbs.
    /// Held chunks are released by the next delivered chunk and must be
    /// flushed with [`OfmActor::flush_held`] before the stream's
    /// terminal marker.
    fn faulted_send(
        &self,
        ctx: &mut Ctx<'_, GdhMsg>,
        to: ProcessId,
        msg: GdhMsg,
        held: &mut Vec<(ProcessId, GdhMsg)>,
    ) -> std::result::Result<(), ()> {
        match self.faults.chunk_fate(ctx.self_pe) {
            prisma_faultx::ChunkFate::Drop => Ok(()),
            prisma_faultx::ChunkFate::Delay => {
                held.push((to, msg));
                Ok(())
            }
            prisma_faultx::ChunkFate::Duplicate => {
                let copy = Self::clone_chunk(&msg);
                ctx.send(to, msg).map_err(|_| ())?;
                if let Some(copy) = copy {
                    ctx.send(to, copy).map_err(|_| ())?;
                }
                self.flush_held(ctx, held)
            }
            prisma_faultx::ChunkFate::Corrupt => {
                let mut msg = msg;
                Self::corrupt_chunk(&mut msg);
                ctx.send(to, msg).map_err(|_| ())?;
                self.flush_held(ctx, held)
            }
            prisma_faultx::ChunkFate::Deliver => {
                ctx.send(to, msg).map_err(|_| ())?;
                self.flush_held(ctx, held)
            }
        }
    }

    /// Deliver any held-back chunks (in hold order, after whatever
    /// overtook them).
    fn flush_held(
        &self,
        ctx: &mut Ctx<'_, GdhMsg>,
        held: &mut Vec<(ProcessId, GdhMsg)>,
    ) -> std::result::Result<(), ()> {
        for (to, msg) in held.drain(..) {
            ctx.send(to, msg).map_err(|_| ())?;
        }
        Ok(())
    }

    /// Grace-join phase 1, direct form: run this fragment's side subplan
    /// and address every produced batch's buckets straight at the
    /// phase-2 site actors. One sequence-numbered stream per distinct
    /// site, each closed by a per-site [`GdhMsg::ShuffleEnd`] carrying
    /// the rows that site was shipped (sites cross-check on arrival). A
    /// subplan error ends every site's stream with the error — the sites
    /// forward it to the coordinator, so failures travel the data path.
    #[allow(clippy::too_many_arguments)]
    fn run_shuffle_source(
        &self,
        query_id: QueryId,
        exchange: u32,
        plan: &PhysicalPlan,
        key_cols: &[usize],
        sites: &[ProcessId],
        restrict_to: Option<ProcessId>,
        side: ShuffleSide,
        tag: u64,
        columnar: bool,
        ctx: &mut Ctx<'_, GdhMsg>,
    ) {
        struct SiteSlot {
            site: ProcessId,
            seq: u64,
            rows: u64,
        }
        // Failover re-issue: only the replacement site's slot ships;
        // the partitioning itself still runs over all `sites.len()`
        // buckets so bucket boundaries stay identical to the first run.
        let active = |site: ProcessId| restrict_to.is_none_or(|r| r == site);
        // Distinct sites in first-bucket order; bucket j routes to
        // slot_of[sites[j]].
        let mut slots: Vec<SiteSlot> = Vec::new();
        let mut slot_of: HashMap<ProcessId, usize> = HashMap::new();
        for &site in sites {
            slot_of.entry(site).or_insert_with(|| {
                slots.push(SiteSlot {
                    site,
                    seq: 0,
                    rows: 0,
                });
                slots.len() - 1
            });
        }
        let fail_all = |slots: &[SiteSlot], e: PrismaError, ctx: &mut Ctx<'_, GdhMsg>| {
            for slot in slots.iter().filter(|s| active(s.site)) {
                let _ = ctx.send(
                    slot.site,
                    GdhMsg::ShuffleEnd {
                        query_id,
                        exchange,
                        side,
                        tag,
                        seq_count: slot.seq,
                        result: Err(e.clone()),
                    },
                );
            }
        };
        let mut source = match self.ofm.open_physical(plan, &HashMap::new()) {
            Ok(s) => s,
            Err(e) => {
                fail_all(&slots, e, ctx);
                return;
            }
        };
        let mut held_back = Vec::new(); // fault-delayed chunks
        loop {
            match source.next_batch() {
                Ok(Some(batch)) => {
                    // Partition this batch on the spot by row *position*
                    // (keys read straight from the columnar form — the
                    // batch is never pivoted to rows here), then build
                    // each bucket's wire payload: an encoded column
                    // block on the columnar wire, gathered tuples on
                    // the row baseline. Placement is bit-identical
                    // across both wires (same key hash, same NULL drop).
                    let positions = prisma_relalg::exec::partition_positions(
                        &batch,
                        key_cols,
                        sites.len(),
                    );
                    let mut per_slot: Vec<ShufflePayload> = (0..slots.len())
                        .map(|_| Vec::new())
                        .collect();
                    for (j, pos) in positions.into_iter().enumerate() {
                        if pos.is_empty() {
                            continue;
                        }
                        let data = if columnar {
                            ChunkData::Blocks {
                                frame: std::sync::Arc::new(batch.encode_positions(&pos)),
                                sealed: None,
                            }
                        } else {
                            ChunkData::Rows(Batch::owned(batch.gather_rows(&pos)))
                        };
                        per_slot[slot_of[&sites[j]]].push((j, data));
                    }
                    let mut dead: Option<ProcessId> = None;
                    for (idx, payload) in per_slot.into_iter().enumerate() {
                        if payload.is_empty() || !active(slots[idx].site) {
                            continue;
                        }
                        let rows: u64 =
                            payload.iter().map(|(_, d)| d.rows()).sum();
                        let slot = &mut slots[idx];
                        let msg = GdhMsg::ShuffleChunk {
                            query_id,
                            exchange,
                            side,
                            tag,
                            seq: slot.seq,
                            buckets: payload,
                        };
                        if self.faulted_send(ctx, slot.site, msg, &mut held_back).is_err() {
                            dead = Some(slot.site);
                            break;
                        }
                        slot.seq += 1;
                        slot.rows += rows;
                    }
                    if let Some(site) = dead {
                        // One site is gone: end every surviving site's
                        // stream with the error, so the query fails fast
                        // through the data path instead of timing out.
                        fail_all(
                            &slots,
                            PrismaError::Execution(format!(
                                "{query_id}: shuffle site {site} unreachable"
                            )),
                            ctx,
                        );
                        return;
                    }
                }
                Ok(None) => {
                    let _ = self.flush_held(ctx, &mut held_back);
                    for slot in slots.iter().filter(|s| active(s.site)) {
                        let _ = ctx.send(
                            slot.site,
                            GdhMsg::ShuffleEnd {
                                query_id,
                                exchange,
                                side,
                                tag,
                                seq_count: slot.seq,
                                result: Ok(StreamStats {
                                    rows: slot.rows,
                                    ..StreamStats::default()
                                }),
                            },
                        );
                    }
                    return;
                }
                Err(e) => {
                    let _ = self.flush_held(ctx, &mut held_back);
                    fail_all(&slots, e, ctx);
                    return;
                }
            }
        }
    }

    /// Install a phase-2 shuffle-join task, replaying any peer traffic
    /// that raced ahead of the spec.
    #[allow(clippy::too_many_arguments)]
    fn install_shuffle_join(
        &mut self,
        query_id: QueryId,
        exchange: u32,
        plan: Box<PhysicalPlan>,
        lschema: Schema,
        rschema: Schema,
        buckets: Vec<usize>,
        left_streams: &[u64],
        right_streams: &[u64],
        reply_to: ProcessId,
        tag: u64,
        stream: bool,
        columnar: bool,
        ctx: &mut Ctx<'_, GdhMsg>,
    ) {
        let key = (query_id, exchange);
        let pending = match self.shuffles.remove(&key) {
            Some(ShuffleState::Pending(buf)) => buf,
            Some(active @ ShuffleState::Active(_)) => {
                // Duplicate spec: keep the installed task, fail the new
                // requester (protocol error).
                self.shuffles.insert(key, active);
                let _ = ctx.send(
                    reply_to,
                    GdhMsg::StreamEnd {
                        query_id,
                        tag,
                        seq_count: 0,
                        result: Err(PrismaError::Execution(format!(
                            "{query_id}: duplicate shuffle-join spec for exchange {exchange}"
                        ))),
                    },
                );
                return;
            }
            None => Vec::new(),
        };
        let task = Box::new(ShuffleTask {
            plan,
            lschema,
            rschema,
            owned: buckets.into_iter().collect(),
            reply_to,
            tag,
            stream,
            columnar,
            left: ShuffleSideState::expecting(left_streams),
            right: ShuffleSideState::expecting(right_streams),
            shuffled_bits: 0,
            bucket_bits: HashMap::new(),
        });
        self.shuffles.insert(key, ShuffleState::Active(task));
        for msg in pending {
            self.advance_shuffle(key, msg, ctx);
        }
        self.maybe_finish_shuffle(key, ctx);
    }

    /// Route one piece of peer shuffle traffic: buffer it when the spec
    /// has not landed yet, otherwise feed the task.
    fn on_shuffle_traffic(&mut self, msg: GdhMsg, ctx: &mut Ctx<'_, GdhMsg>) {
        let key = match &msg {
            GdhMsg::ShuffleChunk {
                query_id, exchange, ..
            }
            | GdhMsg::ShuffleEnd {
                query_id, exchange, ..
            } => (*query_id, *exchange),
            _ => return,
        };
        if self.finished.contains(&key) {
            return; // straggler for a completed/torn-down shuffle
        }
        match self.shuffles.get_mut(&key) {
            None => {
                self.shuffles
                    .insert(key, ShuffleState::Pending(vec![msg]));
            }
            Some(ShuffleState::Pending(buf)) => buf.push(msg),
            Some(ShuffleState::Active(_)) => {
                self.advance_shuffle(key, msg, ctx);
                self.maybe_finish_shuffle(key, ctx);
            }
        }
    }

    /// Feed one message to the installed task; a protocol error tears
    /// the task down and travels to the coordinator as the reply
    /// stream's error.
    fn advance_shuffle(
        &mut self,
        key: (QueryId, u32),
        msg: GdhMsg,
        ctx: &mut Ctx<'_, GdhMsg>,
    ) {
        let Some(ShuffleState::Active(task)) = self.shuffles.get_mut(&key) else {
            return;
        };
        if let Err(e) = Self::apply_shuffle_msg(task, msg) {
            let reply_to = task.reply_to;
            let tag = task.tag;
            self.shuffles.remove(&key);
            self.note_shuffle_finished(key);
            let _ = ctx.send(
                reply_to,
                GdhMsg::StreamEnd {
                    query_id: key.0,
                    tag,
                    seq_count: 0,
                    result: Err(e),
                },
            );
        }
    }

    fn apply_shuffle_msg(task: &mut ShuffleTask, msg: GdhMsg) -> Result<()> {
        match msg {
            GdhMsg::ShuffleChunk {
                side,
                tag,
                seq,
                buckets,
                ..
            } => {
                for (bucket, _) in &buckets {
                    if !task.owned.contains(bucket) {
                        return Err(PrismaError::Execution(format!(
                            "shuffle stream {tag}: chunk for bucket {bucket} this site does not own"
                        )));
                    }
                }
                let side_idx = (side == ShuffleSide::Right) as usize;
                for (bucket, data) in &buckets {
                    let bits = data.wire_bits();
                    task.shuffled_bits += bits;
                    task.bucket_bits.entry(*bucket).or_default()[side_idx] += bits;
                }
                let state = task.side_mut(side);
                let mut released: Vec<ShufflePayload> = Vec::new();
                state.reassembly.accept(tag, seq, buckets, &mut released)?;
                for payload in released {
                    for (_, data) in payload {
                        // Decode here — a frame mangled on the wire is a
                        // protocol error that tears the task down and
                        // fails the query, never a silent mis-join.
                        let rows = data.into_tuples()?;
                        *state.released.entry(tag).or_default() += rows.len() as u64;
                        state.rows.extend(rows);
                    }
                }
                Ok(())
            }
            GdhMsg::ShuffleEnd {
                side,
                tag,
                seq_count,
                result,
                ..
            } => {
                let stats = result?; // a source-side error fails the site
                let state = task.side_mut(side);
                state.advertised.insert(tag, stats.rows);
                state.reassembly.finish(tag, seq_count)
            }
            other => Err(PrismaError::Execution(format!(
                "unexpected shuffle message {other:?}"
            ))),
        }
    }

    /// Once every peer stream of both sides completed: cross-check the
    /// advertised row counts, run the bucket join locally, and stream
    /// the result to the coordinator.
    fn maybe_finish_shuffle(&mut self, key: (QueryId, u32), ctx: &mut Ctx<'_, GdhMsg>) {
        let complete = matches!(
            self.shuffles.get(&key),
            Some(ShuffleState::Active(task)) if task.all_streams_complete()
        );
        if !complete {
            return;
        }
        let Some(ShuffleState::Active(task)) = self.shuffles.remove(&key) else {
            return;
        };
        self.note_shuffle_finished(key);
        let task = *task;
        let query_id = key.0;
        for state in [&task.left, &task.right] {
            for (tag, advertised) in &state.advertised {
                // Rows a source said it shipped here must be the rows
                // that came out of reassembly — note the per-site count,
                // not the source's total (each site gets a slice).
                let released = state.released.get(tag).copied().unwrap_or(0);
                if *advertised != released {
                    let _ = ctx.send(
                        task.reply_to,
                        GdhMsg::StreamEnd {
                            query_id,
                            tag: task.tag,
                            seq_count: 0,
                            result: Err(PrismaError::Execution(format!(
                                "{query_id}: shuffle stream {tag} advertised {advertised} rows but {released} arrived"
                            ))),
                        },
                    );
                    return;
                }
            }
        }
        // What the relay baseline would have moved through the
        // coordinator for these buckets: everything crosses in once;
        // only two-sided buckets are re-shipped out (one-sided buckets
        // join to nothing and the relay skips them).
        let reshipped: u64 = task
            .bucket_bits
            .values()
            .filter(|b| b[0] > 0 && b[1] > 0)
            .map(|b| b[0] + b[1])
            .sum();
        let stats = StreamStats {
            rows: 0, // filled by ship_stream
            shuffled_bits: task.shuffled_bits,
            relay_saved_bits: task.shuffled_bits + reshipped,
        };
        let extra = shuffle_extras(
            Relation::new(task.lschema.clone(), task.left.rows),
            Relation::new(task.rschema.clone(), task.right.rows),
        );
        let tag = task.tag;
        let columnar = task.columnar;
        self.ship_stream(
            &task.plan,
            &extra,
            task.reply_to,
            query_id,
            tag,
            task.stream,
            stats,
            ctx,
            |seq, batch| {
                let data = ChunkData::from_batch(batch, columnar);
                (
                    data.rows(),
                    GdhMsg::BatchChunk {
                        query_id,
                        tag,
                        seq,
                        data,
                    },
                )
            },
        );
    }
}

impl Process<GdhMsg> for OfmActor {
    fn handle(&mut self, msg: GdhMsg, ctx: &mut Ctx<'_, GdhMsg>) {
        // Scripted PE kill: once the injector declares this PE dead the
        // actor falls silent mid-protocol — requests are swallowed, no
        // replies, no stream ends — exactly what a crashed machine
        // looks like to its peers.
        if self.faults.on_message(ctx.self_pe) {
            return;
        }
        match msg {
            GdhMsg::RunSubplan {
                query_id,
                plan,
                extra,
                reply_to,
                tag,
                stream,
                columnar,
            } => {
                self.ofm.seal_for_scan();
                self.ship_stream(
                    &plan,
                    &extra,
                    reply_to,
                    query_id,
                    tag,
                    stream,
                    StreamStats::default(),
                    ctx,
                    |seq, batch| {
                        let data = ChunkData::from_batch(batch, columnar);
                        (
                            data.rows(),
                            GdhMsg::BatchChunk {
                                query_id,
                                tag,
                                seq,
                                data,
                            },
                        )
                    },
                );
            }
            GdhMsg::ShuffleSubplan {
                query_id,
                exchange,
                plan,
                key_cols,
                sites,
                restrict_to,
                side,
                tag,
                columnar,
            } => {
                self.ofm.seal_for_scan();
                self.run_shuffle_source(
                    query_id, exchange, &plan, &key_cols, &sites, restrict_to, side, tag,
                    columnar, ctx,
                );
            }
            GdhMsg::ShuffleJoin {
                query_id,
                exchange,
                plan,
                lschema,
                rschema,
                buckets,
                left_streams,
                right_streams,
                reply_to,
                tag,
                stream,
                columnar,
            } => {
                self.install_shuffle_join(
                    query_id,
                    exchange,
                    plan,
                    lschema,
                    rschema,
                    buckets,
                    &left_streams,
                    &right_streams,
                    reply_to,
                    tag,
                    stream,
                    columnar,
                    ctx,
                );
            }
            msg @ (GdhMsg::ShuffleChunk { .. } | GdhMsg::ShuffleEnd { .. }) => {
                self.on_shuffle_traffic(msg, ctx);
            }
            GdhMsg::Repartition {
                query_id,
                plan,
                key_cols,
                parts,
                reply_to,
                tag,
                stream,
            } => {
                // Buckets ship per produced batch: partition each batch
                // on the spot instead of materializing the whole side.
                self.ofm.seal_for_scan();
                self.ship_stream(
                    &plan,
                    &HashMap::new(),
                    reply_to,
                    query_id,
                    tag,
                    stream,
                    StreamStats::default(),
                    ctx,
                    |seq, batch| {
                        let buckets = prisma_relalg::exec::partition_batches(
                            vec![batch],
                            &key_cols,
                            parts,
                        );
                        // NULL-key rows were dropped: advertise what ships.
                        let rows = buckets.iter().map(|b| b.len() as u64).sum();
                        (
                            rows,
                            GdhMsg::PartitionChunk {
                                query_id,
                                tag,
                                seq,
                                buckets,
                            },
                        )
                    },
                );
            }
            GdhMsg::Insert {
                txn,
                rows,
                reply_to,
                tag,
            } => {
                let mut n = 0;
                let mut result = Ok(0);
                for row in rows {
                    match self.ofm.insert(txn, row) {
                        Ok(_) => n += 1,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                let result = result.map(|_| n);
                self.ship_replica_batch(ctx, false, txn);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::DeleteWhere {
                txn,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.delete_where(txn, &pred);
                self.ship_replica_batch(ctx, false, txn);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::UpdateWhere {
                txn,
                assignments,
                predicate,
                reply_to,
                tag,
            } => {
                let pred = predicate
                    .unwrap_or_else(|| ScalarExpr::lit(true));
                let result = self.ofm.update_where(txn, &pred, &assignments);
                self.ship_replica_batch(ctx, false, txn);
                let _ = ctx.send(reply_to, GdhMsg::DmlDone { tag, result });
            }
            GdhMsg::Prepare { txn, reply_to, tag } => {
                // Scripted crash between receiving the prepare and
                // voting: the coordinator's vote timeout aborts.
                if self.faults.on_2pc(ctx.self_pe, prisma_faultx::TwoPcPhase::Prepare) {
                    return;
                }
                let result = self.ofm.prepare(txn);
                let _ = ctx.send(reply_to, GdhMsg::Vote { tag, result });
            }
            GdhMsg::Commit { txn, reply_to, tag } => {
                // Scripted crash after the commit decision reached this
                // participant but before it applied: the decision is
                // durable at the coordinator, so recovery re-delivers.
                if self.faults.on_2pc(ctx.self_pe, prisma_faultx::TwoPcPhase::Commit) {
                    return;
                }
                let result = self.ofm.commit(txn);
                if result.is_ok()
                    && self.ship_replica_batch(ctx, true, txn)
                {
                    // The 2PC ack is gated on the backup acknowledging
                    // the commit record — once it does, either copy can
                    // serve the committed data, which is what makes a
                    // mid-query failover read-consistent.
                    self.awaiting_replica
                        .insert(txn.index() as u64, (reply_to, tag, result));
                    return;
                }
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Abort { txn, reply_to, tag } => {
                let result = self.ofm.abort(txn).map(|_| 0);
                self.ship_replica_batch(ctx, false, txn);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::ReplicaAppend {
                fragment,
                records,
                ack,
                reply_to,
                tag,
            } => {
                let result = if fragment == self.ofm.fragment_id() {
                    self.ofm.replica_apply(records)
                } else {
                    Err(PrismaError::Execution(format!(
                        "replica batch for {fragment} reached the OFM of {}",
                        self.ofm.fragment_id()
                    )))
                };
                if ack {
                    let _ = ctx.send(reply_to, GdhMsg::ReplicaAck { tag, result });
                }
            }
            GdhMsg::ReplicaAck { tag, result } => {
                if let Some((reply_to, coord_tag, local)) =
                    self.awaiting_replica.remove(&tag)
                {
                    // The backup's apply error outranks the local
                    // success: the coordinator must hear that the
                    // redundancy it is counting on does not exist.
                    let result = result.and(local);
                    let _ = ctx.send(reply_to, GdhMsg::Ack { tag: coord_tag, result });
                }
            }
            GdhMsg::CreateIndex {
                column,
                hash,
                reply_to,
                tag,
            } => {
                let result = if hash {
                    self.ofm.fragment_mut().add_hash_index(vec![column])
                } else {
                    self.ofm.fragment_mut().add_btree_index(vec![column])
                }
                .map(|_| 0);
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::Checkpoint { reply_to, tag } => {
                let result = self.ofm.checkpoint();
                let _ = ctx.send(reply_to, GdhMsg::Ack { tag, result });
            }
            GdhMsg::CollectStats { reply_to, tag } => {
                let _ = ctx.send(
                    reply_to,
                    GdhMsg::StatsReport {
                        tag,
                        fragment: self.ofm.fragment_id(),
                        stats: Box::new(self.ofm.statistics()),
                    },
                );
            }
            // Replies arriving at an OFM are protocol errors; ignore.
            GdhMsg::BatchChunk { .. }
            | GdhMsg::PartitionChunk { .. }
            | GdhMsg::StreamEnd { .. }
            | GdhMsg::DmlDone { .. }
            | GdhMsg::Vote { .. }
            | GdhMsg::Ack { .. }
            | GdhMsg::StatsReport { .. } => {}
        }
    }
}
