//! The concurrency-control unit: strict two-phase locking with wait-for
//! graph deadlock detection.
//!
//! Paper §2.2: "evaluation of several queries and updates can be done in
//! parallel, except for accesses to the same copy of base fragments of the
//! database" — shared locks let readers proceed concurrently; exclusive
//! locks serialize updates to the same relation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use prisma_types::{PrismaError, Result, TxnId};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

#[derive(Debug, Default)]
struct ResourceState {
    holders: HashMap<TxnId, LockMode>,
    /// FIFO wait queue: `(txn, mode)`.
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl ResourceState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }
}

#[derive(Debug, Default)]
struct LmState {
    resources: HashMap<String, ResourceState>,
    /// txn → resources it holds (for release-all).
    held: HashMap<TxnId, HashSet<String>>,
    /// txn → txns it waits for (wait-for graph edges).
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
    /// Transactions chosen as deadlock victims; their pending/future
    /// acquires fail until released.
    victims: HashSet<TxnId>,
}

impl LmState {
    /// True if adding `waiter → holders` edges creates a cycle through
    /// `waiter`.
    fn would_deadlock(&self, waiter: TxnId) -> bool {
        // DFS from waiter over waits_for.
        let mut stack: Vec<TxnId> = self
            .waits_for
            .get(&waiter)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == waiter {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Strict-2PL lock manager at relation granularity.
pub struct LockManager {
    state: Arc<Mutex<LmState>>,
    wakeup: Arc<Condvar>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl LockManager {
    /// Fresh manager.
    pub fn new() -> Self {
        LockManager {
            state: Arc::new(Mutex::new(LmState::default())),
            wakeup: Arc::new(Condvar::new()),
        }
    }

    /// Acquire `mode` on `resource` for `txn`, blocking until granted.
    /// If blocking would close a cycle in the wait-for graph, the
    /// *requesting* transaction is chosen as the victim and
    /// [`PrismaError::Deadlock`] is returned; the caller must abort it.
    pub fn acquire(&self, txn: TxnId, resource: &str, mode: LockMode) -> Result<()> {
        let mut st = self.state.lock();
        if st.victims.contains(&txn) {
            return Err(PrismaError::Deadlock(txn));
        }
        // Fast path / lock upgrade.
        {
            let res = st.resources.entry(resource.to_owned()).or_default();
            if let Some(&held) = res.holders.get(&txn) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(()); // already sufficient
                }
                // Upgrade S→X: allowed when sole holder and nothing queued
                // ahead that conflicts.
                if res.holders.len() == 1 && res.compatible(txn, LockMode::Exclusive) {
                    res.holders.insert(txn, LockMode::Exclusive);
                    return Ok(());
                }
            } else if res.waiters.is_empty() && res.compatible(txn, mode) {
                res.holders.insert(txn, mode);
                st.held.entry(txn).or_default().insert(resource.to_owned());
                return Ok(());
            }
        }
        // Must wait: install wait-for edges and check for a cycle.
        let holders: Vec<TxnId> = st.resources[resource]
            .holders
            .keys()
            .copied()
            .filter(|t| *t != txn)
            .collect();
        st.waits_for.entry(txn).or_default().extend(holders);
        if st.would_deadlock(txn) {
            st.waits_for.remove(&txn);
            st.victims.insert(txn);
            return Err(PrismaError::Deadlock(txn));
        }
        st.resources
            .get_mut(resource)
            .expect("created above")
            .waiters
            .push_back((txn, mode));

        loop {
            self.wakeup.wait(&mut st);
            if st.victims.contains(&txn) {
                // Chosen as a victim while waiting (by another waiter's
                // cycle detection passing through us? we only victimize
                // requesters, but stay defensive).
                let res = st.resources.get_mut(resource).expect("exists");
                res.waiters.retain(|(t, _)| *t != txn);
                st.waits_for.remove(&txn);
                return Err(PrismaError::Deadlock(txn));
            }
            let res = st.resources.get_mut(resource).expect("exists");
            // Grant in FIFO order: only the head of the queue may enter.
            if let Some(&(head, head_mode)) = res.waiters.front() {
                if head == txn && res.compatible(txn, head_mode) {
                    res.waiters.pop_front();
                    res.holders.insert(txn, head_mode);
                    st.waits_for.remove(&txn);
                    st.held.entry(txn).or_default().insert(resource.to_owned());
                    // Shared grants can cascade to further shared waiters.
                    self.wakeup.notify_all();
                    return Ok(());
                }
                // Allow shared waiters behind a shared head to pile in.
                if head != txn
                    && head_mode == LockMode::Shared
                    && res
                        .waiters
                        .iter()
                        .take_while(|(t, m)| *t != txn && *m == LockMode::Shared)
                        .count()
                        > 0
                {
                    // Handled when the head is granted; keep waiting.
                }
            }
        }
    }

    /// Release everything `txn` holds and clear its victim flag.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.victims.remove(&txn);
        st.waits_for.remove(&txn);
        if let Some(resources) = st.held.remove(&txn) {
            for r in resources {
                if let Some(res) = st.resources.get_mut(&r) {
                    res.holders.remove(&txn);
                    res.waiters.retain(|(t, _)| *t != txn);
                }
            }
        }
        // Also drop any queued waits (aborting while enqueued).
        for res in st.resources.values_mut() {
            res.waiters.retain(|(t, _)| *t != txn);
            res.holders.remove(&txn);
        }
        self.wakeup.notify_all();
    }

    /// Locks currently held by `txn` (for tests/metrics).
    pub fn held_by(&self, txn: TxnId) -> Vec<String> {
        let st = self.state.lock();
        let mut v: Vec<String> = st
            .held
            .get(&txn)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "r", LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), "r", LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(TxnId(1)), vec!["r".to_owned()]);
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.acquire(TxnId(3), "r", LockMode::Exclusive).unwrap();
        // A second exclusive from the same txn is idempotent.
        lm.acquire(TxnId(3), "r", LockMode::Exclusive).unwrap();
        lm.release_all(TxnId(3));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "r", LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), "r", LockMode::Exclusive).unwrap();
        lm.release_all(TxnId(1));
    }

    #[test]
    fn blocked_writer_proceeds_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxnId(1), "r", LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let acquired = Arc::new(AtomicUsize::new(0));
        let acquired2 = acquired.clone();
        let h = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), "r", LockMode::Exclusive).unwrap();
            acquired2.store(1, Ordering::SeqCst);
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(acquired.load(Ordering::SeqCst), 0, "writer must wait");
        lm.release_all(TxnId(1));
        h.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadlock_detected_and_victim_chosen() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxnId(1), "a", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), "b", LockMode::Exclusive).unwrap();
            // T2 waits for a (held by T1).
            // Either T2 wins `a` after T1's deadlock-abort, or T2 itself
            // was the victim (timing-dependent); both are valid outcomes,
            // and both end with T2's locks released.
            let _ = lm2.acquire(TxnId(2), "a", LockMode::Exclusive);
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(Duration::from_millis(50));
        // T1 now requests b, closing the cycle: T1 must be victimized.
        let r = lm.acquire(TxnId(1), "b", LockMode::Exclusive);
        assert!(matches!(r, Err(PrismaError::Deadlock(TxnId(1)))));
        lm.release_all(TxnId(1));
        h.join().unwrap();
    }

    #[test]
    fn victim_flag_cleared_by_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxnId(1), "a", LockMode::Exclusive).unwrap();
        // Force-victimize T2 via a synthetic cycle: T2 waits for T1...
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            let _ = lm2.acquire(TxnId(2), "a", LockMode::Exclusive);
            lm2.release_all(TxnId(2));
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnId(1));
        h.join().unwrap();
        // T2 released; it can lock again.
        lm.acquire(TxnId(2), "a", LockMode::Shared).unwrap();
        lm.release_all(TxnId(2));
    }

    #[test]
    fn many_concurrent_readers_one_writer_stress() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let lm = lm.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let txn = TxnId(100 + i);
                    let mode = if (i + round) % 4 == 0 {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    match lm.acquire(txn, "hot", mode) {
                        Ok(()) => lm.release_all(txn),
                        Err(_) => lm.release_all(txn), // deadlock victim: retry next round
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
