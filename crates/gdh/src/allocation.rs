//! The data-allocation manager's placement policies (paper §2.2).
//!
//! Placement decides which PE hosts each new fragment. The paper motivates
//! "a proper balance between storage, processing, and communication";
//! experiment E8 compares these policies by measured communication volume
//! and response time.

use prisma_multicomputer::Topology;
use prisma_types::PeId;

/// Fragment-placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Cycle through PEs in id order.
    RoundRobin,
    /// Choose the PEs currently hosting the fewest fragments.
    LoadBalanced,
    /// Place fragments adjacent (topologically) to a given anchor
    /// relation's fragments, so co-partitioned joins ship nothing and
    /// repartitioned joins ship over short paths.
    LocalityAware,
}

impl AllocationPolicy {
    /// Choose `n` PEs for a new relation's fragments.
    ///
    /// * `load` — fragments currently hosted per PE;
    /// * `anchor` — for [`AllocationPolicy::LocalityAware`], the PEs of
    ///   the relation this one will usually join with (fragment *i* goes
    ///   as close as possible to anchor fragment *i*, ideally the same PE,
    ///   which makes a co-partitioned join fully local).
    pub fn place(
        &self,
        n: usize,
        load: &[usize],
        topology: &Topology,
        anchor: Option<&[PeId]>,
    ) -> Vec<PeId> {
        let num_pes = load.len().max(1);
        match self {
            AllocationPolicy::RoundRobin => {
                // Start after the most recently used PE so consecutive
                // relations do not all pile onto PE 0.
                let start = load
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i + 1)
                    .unwrap_or(0);
                (0..n).map(|i| PeId::from((start + i) % num_pes)).collect()
            }
            AllocationPolicy::LoadBalanced => {
                let mut load = load.to_vec();
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let (pe, _) = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .expect("non-empty");
                    out.push(PeId::from(pe));
                    load[pe] += 1;
                }
                out
            }
            AllocationPolicy::LocalityAware => {
                let Some(anchor) = anchor.filter(|a| !a.is_empty()) else {
                    // No anchor: degrade to load balancing.
                    return AllocationPolicy::LoadBalanced.place(n, load, topology, None);
                };
                let mut load = load.to_vec();
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let target = anchor[i % anchor.len()];
                    // Cost = hops to the anchor + current load: the anchor
                    // PE itself wins when idle, a saturated anchor spills
                    // to its topological neighbours.
                    let (pe, _) = (0..load.len())
                        .map(|p| {
                            let d = topology.distance(target, PeId::from(p));
                            (p, (d as usize + load[p], p))
                        })
                        .min_by_key(|&(_, k)| k)
                        .expect("non-empty");
                    out.push(PeId::from(pe));
                    load[pe] += 1;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::MachineConfig;

    fn topo() -> Topology {
        Topology::build(&MachineConfig::paper_prototype()).unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let t = topo();
        let placement = AllocationPolicy::RoundRobin.place(8, &vec![0; 64], &t, None);
        let mut uniq = placement.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "8 distinct PEs expected: {placement:?}");
    }

    #[test]
    fn load_balanced_prefers_idle_pes() {
        let t = topo();
        let mut load = vec![0usize; 64];
        load[0] = 5;
        load[1] = 5;
        let placement = AllocationPolicy::LoadBalanced.place(4, &load, &t, None);
        assert!(!placement.contains(&PeId(0)));
        assert!(!placement.contains(&PeId(1)));
    }

    #[test]
    fn locality_aware_colocates_with_anchor() {
        let t = topo();
        let anchor = vec![PeId(10), PeId(20), PeId(30)];
        let placement =
            AllocationPolicy::LocalityAware.place(3, &vec![0; 64], &t, Some(&anchor));
        assert_eq!(placement, anchor, "idle machine: exact co-location");
    }

    #[test]
    fn locality_aware_spills_to_neighbours_under_load() {
        let t = topo();
        let mut load = vec![0usize; 64];
        load[10] = 100; // anchor PE saturated
        let placement =
            AllocationPolicy::LocalityAware.place(1, &load, &t, Some(&[PeId(10)]));
        let d = t.distance(PeId(10), placement[0]);
        assert!(d <= 1, "should stay adjacent, went {d} hops");
        assert_ne!(placement[0], PeId(10));
    }

    #[test]
    fn locality_without_anchor_degrades_gracefully() {
        let t = topo();
        let placement = AllocationPolicy::LocalityAware.place(4, &vec![0; 64], &t, None);
        assert_eq!(placement.len(), 4);
    }
}
