//! The data dictionary: relations, fragmentation, placement, statistics.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use prisma_optimizer::{StatsSource, TableStats};
use prisma_stable::{CheckpointStore, DiskProfile, SimulatedDisk, StableDevice, WriteAheadLog};
use prisma_types::{
    FragmentId, MachineConfig, PeId, PrismaError, ProcessId, Result, Schema, Value,
};

/// One fragment's placement: which PE it lives on and the actor serving it.
#[derive(Debug, Clone)]
pub struct FragmentHandle {
    /// Fragment id (unique machine-wide).
    pub id: FragmentId,
    /// Hosting processing element.
    pub pe: PeId,
    /// The OFM actor's address.
    pub actor: ProcessId,
}

/// Dictionary entry for one relation.
#[derive(Debug, Clone)]
pub struct RelationInfo {
    /// Relation schema.
    pub schema: Schema,
    /// Hash-fragmentation column (None = round-robin placement of rows).
    pub frag_column: Option<usize>,
    /// The fragments in partition order.
    pub fragments: Vec<FragmentHandle>,
}

impl RelationInfo {
    /// Which fragment a row belongs to.
    pub fn route(&self, values: &[Value]) -> usize {
        match self.frag_column {
            Some(col) => {
                use std::hash::BuildHasher;
                (prisma_storage::FnvBuild.hash_one(&values[col]) as usize) % self.fragments.len()
            }
            // Round-robin by whole-row hash keeps routing deterministic
            // without dictionary mutation on every insert.
            None => {
                use std::hash::{BuildHasher, Hash, Hasher};
                let mut h = prisma_storage::FnvBuild.build_hasher();
                for v in values {
                    v.hash(&mut h);
                }
                (h.finish() as usize) % self.fragments.len()
            }
        }
    }

    /// PEs hosting this relation's fragments.
    pub fn pes(&self) -> Vec<PeId> {
        self.fragments.iter().map(|f| f.pe).collect()
    }
}

/// Stable-storage services of one disk PE (paper §3.2: only some PEs own
/// disks; their neighbours use them for recovery).
#[derive(Clone)]
pub struct StableServices {
    /// Shared write-ahead log.
    pub wal: Arc<WriteAheadLog>,
    /// Shared checkpoint store.
    pub checkpoints: Arc<CheckpointStore>,
}

/// The GDH data dictionary.
pub struct DataDictionary {
    config: MachineConfig,
    relations: RwLock<HashMap<String, RelationInfo>>,
    stats: RwLock<HashMap<String, TableStats>>,
    stable: HashMap<usize, StableServices>,
    next_fragment: RwLock<u32>,
}

impl DataDictionary {
    /// Build the dictionary, creating stable-storage services on every
    /// disk-owning PE of the configuration.
    pub fn new(config: MachineConfig, disk_profile: DiskProfile) -> Self {
        let mut stable = HashMap::new();
        for pe in 0..config.num_pes {
            if config.pe_has_disk(pe) {
                let wal_dev: Arc<dyn StableDevice> =
                    Arc::new(SimulatedDisk::new(disk_profile));
                let ck_dev: Arc<dyn StableDevice> =
                    Arc::new(SimulatedDisk::new(disk_profile));
                stable.insert(
                    pe,
                    StableServices {
                        wal: Arc::new(WriteAheadLog::new(wal_dev)),
                        checkpoints: Arc::new(CheckpointStore::open(ck_dev)),
                    },
                );
            }
        }
        DataDictionary {
            config,
            relations: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            stable,
            next_fragment: RwLock::new(0),
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Allocate a machine-wide unique fragment id.
    pub fn alloc_fragment_id(&self) -> FragmentId {
        let mut n = self.next_fragment.write();
        let id = FragmentId(*n);
        *n += 1;
        id
    }

    /// The stable services a fragment hosted on `pe` uses: the nearest
    /// disk PE at or below it (paper: "some of the processing elements
    /// will also be connected to secondary storage").
    pub fn stable_for(&self, pe: PeId) -> StableServices {
        let stride = self.config.disk_stride;
        let disk_pe = (pe.index() / stride) * stride;
        self.stable
            .get(&disk_pe)
            .or_else(|| self.stable.get(&0))
            .expect("PE 0 always has a disk")
            .clone()
    }

    /// Register a relation.
    pub fn register(&self, name: &str, info: RelationInfo) -> Result<()> {
        let mut rels = self.relations.write();
        if rels.contains_key(name) {
            return Err(PrismaError::DuplicateRelation(name.to_owned()));
        }
        rels.insert(name.to_owned(), info);
        Ok(())
    }

    /// Remove a relation, returning its entry.
    pub fn unregister(&self, name: &str) -> Result<RelationInfo> {
        self.stats.write().remove(name);
        self.relations
            .write()
            .remove(name)
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<RelationInfo> {
        self.relations
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }

    /// All relation names.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Current fragment count per PE — the load signal for allocation.
    pub fn fragments_per_pe(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.num_pes];
        for info in self.relations.read().values() {
            for f in &info.fragments {
                counts[f.pe.index()] += 1;
            }
        }
        counts
    }

    /// Install exact statistics (called by the GDH after loads).
    pub fn put_stats(&self, name: &str, stats: TableStats) {
        self.stats.write().insert(name.to_owned(), stats);
    }

    /// Adjust the row count after DML (keeps estimates usable between
    /// full refreshes).
    pub fn bump_rows(&self, name: &str, delta: i64) {
        if let Some(s) = self.stats.write().get_mut(name) {
            s.rows = (s.rows as i64 + delta).max(0) as u64;
        }
    }
}

impl StatsSource for DataDictionary {
    fn fragmentation(&self, name: &str) -> Option<Vec<FragmentId>> {
        let rels = self.relations.read();
        Some(rels.get(name)?.fragments.iter().map(|f| f.id).collect())
    }

    fn table_stats(&self, name: &str) -> Option<TableStats> {
        if let Some(s) = self.stats.read().get(name) {
            return Some(s.clone());
        }
        // Fall back to an arity-aware default so the estimator stays sane.
        let rels = self.relations.read();
        let info = rels.get(name)?;
        let arity = info.schema.arity();
        Some(TableStats {
            rows: 1000,
            distinct: vec![100; arity],
            min: vec![None; arity],
            max: vec![None; arity],
        })
    }
}

impl prisma_sqlfe::Catalog for DataDictionary {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.relation(name)?.schema)
    }
}

impl prisma_prismalog::SchemaSource for DataDictionary {
    fn edb_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.relation(name)?.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType};

    fn dict() -> DataDictionary {
        DataDictionary::new(MachineConfig::paper_prototype(), DiskProfile::instant())
    }

    fn info(frags: usize, frag_column: Option<usize>) -> RelationInfo {
        RelationInfo {
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
            frag_column,
            fragments: (0..frags)
                .map(|i| FragmentHandle {
                    id: FragmentId(i as u32),
                    pe: PeId::from(i),
                    actor: ProcessId(i as u32),
                })
                .collect(),
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let d = dict();
        d.register("t", info(4, Some(0))).unwrap();
        assert!(d.register("t", info(4, Some(0))).is_err());
        assert_eq!(d.relation("t").unwrap().fragments.len(), 4);
        assert_eq!(d.relation_names(), vec!["t".to_owned()]);
        d.unregister("t").unwrap();
        assert!(d.relation("t").is_err());
    }

    #[test]
    fn hash_routing_is_deterministic_and_spread() {
        let d = dict();
        d.register("t", info(4, Some(0))).unwrap();
        let info = d.relation("t").unwrap();
        let mut seen = vec![0usize; 4];
        for i in 0..100 {
            let row = tuple![i, "x"];
            let f = info.route(row.values());
            assert_eq!(f, info.route(row.values()));
            seen[f] += 1;
        }
        assert!(seen.iter().all(|&c| c > 10), "skewed routing: {seen:?}");
    }

    #[test]
    fn stable_services_shared_within_stride() {
        let d = dict();
        let a = d.stable_for(PeId(1));
        let b = d.stable_for(PeId(7));
        let c = d.stable_for(PeId(8));
        assert!(Arc::ptr_eq(&a.wal, &b.wal), "PE1 and PE7 share disk PE0");
        assert!(!Arc::ptr_eq(&a.wal, &c.wal), "PE8 has its own disk");
    }

    #[test]
    fn stats_fallback_has_relation_arity() {
        let d = dict();
        d.register("t", info(2, None)).unwrap();
        let s = d.table_stats("t").unwrap();
        assert_eq!(s.distinct.len(), 2);
        assert!(d.table_stats("ghost").is_none());
        d.put_stats(
            "t",
            TableStats {
                rows: 5,
                distinct: vec![5, 5],
                min: vec![None, None],
                max: vec![None, None],
            },
        );
        d.bump_rows("t", 3);
        assert_eq!(d.table_stats("t").unwrap().rows, 8);
    }

    #[test]
    fn fragment_ids_unique() {
        let d = dict();
        let a = d.alloc_fragment_id();
        let b = d.alloc_fragment_id();
        assert_ne!(a, b);
    }
}
