//! The data dictionary: relations, fragmentation, placement, statistics.
//!
//! ## Statistics lifecycle
//!
//! Per-fragment statistics are cached here, keyed `(relation, fragment)`
//! and stamped with the relation's **mutation epoch** at caching time.
//! Every DML batch bumps the epoch ([`DataDictionary::note_mutation`]),
//! so freshness is a pure epoch comparison: a relation's stats are
//! *fresh* when every current fragment reported at the current epoch,
//! *stale* when reports exist but predate the last mutation (or cover
//! only some fragments), *absent* when nothing was ever collected.
//! The table-level [`TableStats`] view the estimator consumes is derived
//! by merging the cached fragment reports (plus the row delta of
//! mutations since the last refresh); stale stats still beat defaults,
//! and EXPLAIN names the freshness of whatever fed each decision.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use prisma_optimizer::{StatsSource, TableStats};
use prisma_stable::{CheckpointStore, DiskProfile, SimulatedDisk, StableDevice, WriteAheadLog};
use prisma_types::{
    FragmentId, FragmentStatistics, MachineConfig, PeId, PrismaError, ProcessId, Result,
    Schema, StatsFreshness, Value,
};

/// One fragment's placement: which PE it lives on and the actor serving it.
///
/// Replicated fragments additionally carry a backup replica on a
/// *distinct* PE (the dictionary's placement rule — primary and backup
/// never share a PE, or one crash would take both) and a placement
/// `epoch` that [`DataDictionary::fail_over_fragment`] bumps on every
/// failover, so streams opened against a dead primary are recognizably
/// stale.
#[derive(Debug, Clone)]
pub struct FragmentHandle {
    /// Fragment id (unique machine-wide).
    pub id: FragmentId,
    /// Hosting processing element.
    pub pe: PeId,
    /// The OFM actor's address.
    pub actor: ProcessId,
    /// Backup replica placement (PE + actor), `None` when unreplicated.
    pub backup: Option<(PeId, ProcessId)>,
    /// Placement epoch; 0 at creation, +1 per failover.
    pub epoch: u32,
}

impl FragmentHandle {
    /// An unreplicated handle at epoch 0.
    pub fn new(id: FragmentId, pe: PeId, actor: ProcessId) -> Self {
        FragmentHandle {
            id,
            pe,
            actor,
            backup: None,
            epoch: 0,
        }
    }

    /// Attach a backup replica. Panics if the backup shares the primary's
    /// PE — that placement defeats replication by construction.
    pub fn with_backup(mut self, pe: PeId, actor: ProcessId) -> Self {
        assert_ne!(
            pe, self.pe,
            "backup replica of {} must live on a distinct PE",
            self.id
        );
        self.backup = Some((pe, actor));
        self
    }
}

/// Dictionary entry for one relation.
#[derive(Debug, Clone)]
pub struct RelationInfo {
    /// Relation schema.
    pub schema: Schema,
    /// Hash-fragmentation column (None = round-robin placement of rows).
    pub frag_column: Option<usize>,
    /// The fragments in partition order.
    pub fragments: Vec<FragmentHandle>,
}

impl RelationInfo {
    /// Which fragment a row belongs to. Errors on a fragment-less
    /// relation instead of hitting the `% 0` panic the modulo would be.
    pub fn route(&self, values: &[Value]) -> Result<usize> {
        if self.fragments.is_empty() {
            return Err(PrismaError::Execution(
                "cannot route tuple: relation has no fragments".to_owned(),
            ));
        }
        Ok(match self.frag_column {
            Some(col) => {
                use std::hash::BuildHasher;
                (prisma_storage::FnvBuild.hash_one(&values[col]) as usize) % self.fragments.len()
            }
            // Round-robin by whole-row hash keeps routing deterministic
            // without dictionary mutation on every insert.
            None => {
                use std::hash::{BuildHasher, Hash, Hasher};
                let mut h = prisma_storage::FnvBuild.build_hasher();
                for v in values {
                    v.hash(&mut h);
                }
                (h.finish() as usize) % self.fragments.len()
            }
        })
    }

    /// PEs hosting this relation's fragments.
    pub fn pes(&self) -> Vec<PeId> {
        self.fragments.iter().map(|f| f.pe).collect()
    }
}

/// Stable-storage services of one disk PE (paper §3.2: only some PEs own
/// disks; their neighbours use them for recovery).
#[derive(Clone)]
pub struct StableServices {
    /// Shared write-ahead log.
    pub wal: Arc<WriteAheadLog>,
    /// Shared checkpoint store.
    pub checkpoints: Arc<CheckpointStore>,
}

/// One fragment's cached statistics report plus the relation mutation
/// epoch it was taken at.
#[derive(Debug, Clone)]
struct CachedFragmentStats {
    stats: FragmentStatistics,
    as_of_epoch: u64,
}

/// Mutation bookkeeping for one relation: the staleness epoch and the
/// net row deltas since the last stats refresh (so merged row estimates
/// stay usable between refreshes).
#[derive(Debug, Clone, Default)]
struct MutationState {
    epoch: u64,
    /// Bumped on every event that changes what `merged_table_stats`
    /// would compute (mutations AND arriving reports) — the version key
    /// that keeps the merged-stats cache from resurrecting a result
    /// computed before a concurrent invalidation.
    gen: u64,
    /// Net row delta per fragment since **that fragment's** last report
    /// — reset fragment-by-fragment as reports arrive, so a partial
    /// refresh never double-counts a delta a fresh report already
    /// includes.
    pending_by_fragment: HashMap<FragmentId, i64>,
    /// Delta not attributable to a fragment (relation-level
    /// [`DataDictionary::note_mutation`]); resets only when every
    /// fragment has re-reported at the current epoch.
    pending_unattributed: i64,
}

impl MutationState {
    fn pending_total(&self) -> i64 {
        self.pending_unattributed + self.pending_by_fragment.values().sum::<i64>()
    }
}

/// The GDH data dictionary.
pub struct DataDictionary {
    config: MachineConfig,
    relations: RwLock<HashMap<String, RelationInfo>>,
    stats: RwLock<HashMap<String, Arc<TableStats>>>,
    /// Per-(relation, fragment) statistics reports from the OFMs.
    fragment_stats: RwLock<HashMap<String, HashMap<FragmentId, CachedFragmentStats>>>,
    /// Per-relation mutation epoch + row delta since the last refresh.
    mutations: RwLock<HashMap<String, MutationState>>,
    /// Memoized merge of the cached fragment reports — planning calls
    /// `table_stats` many times per query, and re-merging histograms on
    /// each would dominate. Entries are keyed by the relation's
    /// [`MutationState::gen`] at compute time: any report or mutation
    /// bumps the gen, so a stale entry (including one racing in after
    /// an invalidation) simply never matches again. The value is an
    /// `Arc` because a hit is handed to the caller as-is — one query
    /// consults `table_stats` dozens of times, and deep-cloning the
    /// merged histograms and MCV lists on every hit dominated the
    /// planning cost of placement-heavy workloads (E8).
    merged_cache: RwLock<HashMap<String, (u64, Arc<TableStats>)>>,
    stable: HashMap<usize, StableServices>,
    next_fragment: RwLock<u32>,
}

impl DataDictionary {
    /// Build the dictionary, creating stable-storage services on every
    /// disk-owning PE of the configuration.
    pub fn new(config: MachineConfig, disk_profile: DiskProfile) -> Self {
        let mut stable = HashMap::new();
        for pe in 0..config.num_pes {
            if config.pe_has_disk(pe) {
                let wal_dev: Arc<dyn StableDevice> =
                    Arc::new(SimulatedDisk::new(disk_profile));
                let ck_dev: Arc<dyn StableDevice> =
                    Arc::new(SimulatedDisk::new(disk_profile));
                stable.insert(
                    pe,
                    StableServices {
                        wal: Arc::new(WriteAheadLog::new(wal_dev)),
                        checkpoints: Arc::new(CheckpointStore::open(ck_dev)),
                    },
                );
            }
        }
        DataDictionary {
            config,
            relations: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            fragment_stats: RwLock::new(HashMap::new()),
            mutations: RwLock::new(HashMap::new()),
            merged_cache: RwLock::new(HashMap::new()),
            stable,
            next_fragment: RwLock::new(0),
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Allocate a machine-wide unique fragment id.
    pub fn alloc_fragment_id(&self) -> FragmentId {
        let mut n = self.next_fragment.write();
        let id = FragmentId(*n);
        *n += 1;
        id
    }

    /// The stable services a fragment hosted on `pe` uses: the nearest
    /// disk PE at or below it (paper: "some of the processing elements
    /// will also be connected to secondary storage").
    pub fn stable_for(&self, pe: PeId) -> StableServices {
        let stride = self.config.disk_stride;
        let disk_pe = (pe.index() / stride) * stride;
        self.stable
            .get(&disk_pe)
            .or_else(|| self.stable.get(&0))
            .expect("PE 0 always has a disk")
            .clone()
    }

    /// Register a relation.
    pub fn register(&self, name: &str, info: RelationInfo) -> Result<()> {
        let mut rels = self.relations.write();
        if rels.contains_key(name) {
            return Err(PrismaError::DuplicateRelation(name.to_owned()));
        }
        rels.insert(name.to_owned(), info);
        Ok(())
    }

    /// Remove a relation, returning its entry.
    pub fn unregister(&self, name: &str) -> Result<RelationInfo> {
        self.stats.write().remove(name);
        self.fragment_stats.write().remove(name);
        self.mutations.write().remove(name);
        self.merged_cache.write().remove(name);
        self.relations
            .write()
            .remove(name)
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<RelationInfo> {
        self.relations
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }

    /// All relation names.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Fail a fragment over to its backup replica: the backup becomes the
    /// primary, the placement epoch bumps (so streams opened against the
    /// dead primary are recognizably stale), and the handle is left
    /// unreplicated until a new backup is provisioned. Returns the
    /// post-failover handle.
    ///
    /// Errors when the fragment is unknown or has no surviving replica —
    /// the caller's query dies with that error instead of retrying
    /// forever against nothing.
    pub fn fail_over_fragment(&self, id: FragmentId) -> Result<FragmentHandle> {
        let mut rels = self.relations.write();
        for info in rels.values_mut() {
            if let Some(f) = info.fragments.iter_mut().find(|f| f.id == id) {
                let (pe, actor) = f.backup.take().ok_or_else(|| {
                    PrismaError::MachineFault(format!(
                        "{id}: primary on {} lost and no backup replica survives",
                        f.pe
                    ))
                })?;
                f.pe = pe;
                f.actor = actor;
                f.epoch += 1;
                return Ok(f.clone());
            }
        }
        Err(PrismaError::NoSuchFragment(id))
    }

    /// The current handle of a fragment, wherever it lives.
    pub fn fragment_handle(&self, id: FragmentId) -> Option<FragmentHandle> {
        let rels = self.relations.read();
        rels.values()
            .flat_map(|info| info.fragments.iter())
            .find(|f| f.id == id)
            .cloned()
    }

    /// Current fragment count per PE — the load signal for allocation.
    pub fn fragments_per_pe(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.num_pes];
        for info in self.relations.read().values() {
            for f in &info.fragments {
                counts[f.pe.index()] += 1;
            }
        }
        counts
    }

    /// Install a table-level summary directly (legacy/bulk path; the
    /// statistics lifecycle normally flows through
    /// [`DataDictionary::put_fragment_stats`]).
    pub fn put_stats(&self, name: &str, stats: TableStats) {
        self.stats.write().insert(name.to_owned(), Arc::new(stats));
    }

    /// The relation's current mutation epoch (0 until the first DML).
    pub fn mutation_epoch(&self, name: &str) -> u64 {
        self.mutations.read().get(name).map_or(0, |m| m.epoch)
    }

    /// Record a DML batch whose row delta cannot be attributed to
    /// specific fragments: bumps the staleness epoch (cached fragment
    /// stats for `name` are stale from here on) and accumulates the
    /// delta so merged row estimates stay usable between refreshes.
    pub fn note_mutation(&self, name: &str, row_delta: i64) {
        let mut m = self.mutations.write();
        let state = m.entry(name.to_owned()).or_default();
        state.epoch += 1;
        state.gen += 1;
        state.pending_unattributed += row_delta;
        drop(m);
        self.adjust_legacy_rows(name, row_delta);
    }

    /// Record a DML batch with per-fragment row deltas (the DML fan-out
    /// knows exactly which fragment absorbed how many rows). Preferred
    /// over [`DataDictionary::note_mutation`]: a later report from one
    /// fragment clears only **its** delta, so a partial refresh never
    /// double-counts rows a fresh report already includes.
    pub fn note_mutation_by_fragment(&self, name: &str, deltas: &[(FragmentId, i64)]) {
        // A batch that changed nothing (e.g. a DELETE matching no rows)
        // leaves every cached report exact — don't stale them.
        if deltas.iter().all(|&(_, d)| d == 0) {
            return;
        }
        let mut m = self.mutations.write();
        let state = m.entry(name.to_owned()).or_default();
        state.epoch += 1;
        state.gen += 1;
        for &(frag, d) in deltas {
            if d != 0 {
                *state.pending_by_fragment.entry(frag).or_default() += d;
            }
        }
        drop(m);
        self.adjust_legacy_rows(name, deltas.iter().map(|&(_, d)| d).sum());
    }

    /// The single definition of "fully reported": every current
    /// fragment of `name` has a cached report stamped at `epoch`. Both
    /// the pending-delta reset and EXPLAIN's freshness label must agree
    /// on this rule.
    fn all_reported_at(
        &self,
        name: &str,
        per_rel: &HashMap<FragmentId, CachedFragmentStats>,
        epoch: u64,
    ) -> bool {
        self.relations.read().get(name).is_some_and(|info| {
            info.fragments
                .iter()
                .all(|f| per_rel.get(&f.id).is_some_and(|c| c.as_of_epoch == epoch))
        })
    }

    /// Keep any legacy table-level summary row-adjusted too.
    fn adjust_legacy_rows(&self, name: &str, row_delta: i64) {
        if let Some(s) = self.stats.write().get_mut(name) {
            // Copy-on-write: estimators may still hold the old Arc.
            Arc::make_mut(s).rows = (s.rows as i64 + row_delta).max(0) as u64;
        }
    }

    /// Cache one fragment's statistics report at the current mutation
    /// epoch. The report subsumes the fragment's own pending delta
    /// immediately; the unattributed delta resets once every current
    /// fragment has reported at this epoch (the relation is fresh again).
    pub fn put_fragment_stats(&self, name: &str, fragment: FragmentId, stats: FragmentStatistics) {
        let epoch = self.mutation_epoch(name);
        let mut cache = self.fragment_stats.write();
        let per_rel = cache.entry(name.to_owned()).or_default();
        per_rel.insert(
            fragment,
            CachedFragmentStats {
                stats,
                as_of_epoch: epoch,
            },
        );
        let all_fresh = self.all_reported_at(name, per_rel, epoch);
        drop(cache);
        let mut m = self.mutations.write();
        let state = m.entry(name.to_owned()).or_default();
        state.gen += 1; // a new report changes what the merge computes
        // Re-validate the epoch under the lock: a mutation that raced
        // in after the report was stamped recorded deltas the report
        // does NOT include — those must survive (the stats are stale
        // either way; leaving the delta keeps the merged row count
        // honest).
        if state.epoch == epoch {
            state.pending_by_fragment.remove(&fragment);
            if all_fresh {
                state.pending_unattributed = 0;
            }
        }
    }

    /// Merge the cached fragment reports into the table-level view, with
    /// the pending mutation delta applied to the row count. `None` when
    /// no fragment of `name` ever reported. Memoized per relation —
    /// every report and mutation invalidates — because planning one
    /// query consults `table_stats` many times (per-operator estimates,
    /// skew checks, placement weights).
    fn merged_table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        // Snapshot the generation FIRST: the computed merge is tagged
        // with it, so a mutation racing in mid-compute makes this entry
        // a guaranteed miss instead of a poisoned cache.
        let gen = self.mutations.read().get(name).map_or(0, |m| m.gen);
        if let Some((cached_gen, hit)) = self.merged_cache.read().get(name) {
            if *cached_gen == gen {
                // A cache hit is a pointer bump, not a histogram clone.
                return Some(Arc::clone(hit));
            }
        }
        let cache = self.fragment_stats.read();
        let per_rel = cache.get(name)?;
        if per_rel.is_empty() {
            return None;
        }
        let info = self.relations.read().get(name).cloned();
        // Partition order keeps the merge deterministic.
        let parts: Vec<FragmentStatistics> = match &info {
            Some(info) => info
                .fragments
                .iter()
                .filter_map(|f| per_rel.get(&f.id).map(|c| c.stats.clone()))
                .collect(),
            None => per_rel.values().map(|c| c.stats.clone()).collect(),
        };
        if parts.is_empty() {
            return None;
        }
        let mut merged =
            TableStats::from_fragments(&parts, info.as_ref().and_then(|i| i.frag_column));
        let pending = self
            .mutations
            .read()
            .get(name)
            .map_or(0, MutationState::pending_total);
        merged.rows = (merged.rows as i64 + pending).max(0) as u64;
        drop(cache);
        let merged = Arc::new(merged);
        self.merged_cache
            .write()
            .insert(name.to_owned(), (gen, Arc::clone(&merged)));
        Some(merged)
    }
}

impl StatsSource for DataDictionary {
    fn fragmentation(&self, name: &str) -> Option<Vec<FragmentId>> {
        let rels = self.relations.read();
        Some(rels.get(name)?.fragments.iter().map(|f| f.id).collect())
    }

    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        // Fragment reports (even stale ones) beat the legacy summary,
        // which beats the arity-aware default.
        if let Some(merged) = self.merged_table_stats(name) {
            return Some(merged);
        }
        if let Some(s) = self.stats.read().get(name) {
            return Some(Arc::clone(s));
        }
        let rels = self.relations.read();
        let info = rels.get(name)?;
        let arity = info.schema.arity();
        Some(Arc::new(TableStats {
            rows: 1000,
            distinct: vec![100; arity],
            min: vec![None; arity],
            max: vec![None; arity],
            ..TableStats::default()
        }))
    }

    fn fragment_stats(&self, name: &str) -> Option<Vec<(FragmentId, FragmentStatistics)>> {
        let cache = self.fragment_stats.read();
        let per_rel = cache.get(name)?;
        let info = self.relations.read().get(name)?.clone();
        // Partition order, skipping fragments that never reported.
        let out: Vec<(FragmentId, FragmentStatistics)> = info
            .fragments
            .iter()
            .filter_map(|f| per_rel.get(&f.id).map(|c| (f.id, c.stats.clone())))
            .collect();
        (!out.is_empty()).then_some(out)
    }

    fn fragment_rows(&self, name: &str) -> Option<Vec<(FragmentId, u64)>> {
        // The placement pass calls this per partitioned join per query:
        // read just the row counts, never clone the full reports.
        let cache = self.fragment_stats.read();
        let per_rel = cache.get(name)?;
        let info = self.relations.read().get(name)?.clone();
        let out: Vec<(FragmentId, u64)> = info
            .fragments
            .iter()
            .filter_map(|f| per_rel.get(&f.id).map(|c| (f.id, c.stats.rows)))
            .collect();
        (!out.is_empty()).then_some(out)
    }

    fn stats_freshness(&self, name: &str) -> StatsFreshness {
        let epoch = self.mutation_epoch(name);
        let cache = self.fragment_stats.read();
        if let Some(per_rel) = cache.get(name) {
            if !per_rel.is_empty() {
                return if self.all_reported_at(name, per_rel, epoch) {
                    StatsFreshness::Fresh
                } else {
                    StatsFreshness::Stale
                };
            }
        }
        if self.stats.read().contains_key(name) {
            StatsFreshness::Stale // a summary exists but its provenance is unknown
        } else {
            StatsFreshness::Absent
        }
    }
}

impl prisma_sqlfe::Catalog for DataDictionary {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.relation(name)?.schema)
    }
}

impl prisma_prismalog::SchemaSource for DataDictionary {
    fn edb_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.relation(name)?.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType};

    fn dict() -> DataDictionary {
        DataDictionary::new(MachineConfig::paper_prototype(), DiskProfile::instant())
    }

    fn info(frags: usize, frag_column: Option<usize>) -> RelationInfo {
        RelationInfo {
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
            frag_column,
            fragments: (0..frags)
                .map(|i| {
                    FragmentHandle::new(FragmentId(i as u32), PeId::from(i), ProcessId(i as u32))
                })
                .collect(),
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let d = dict();
        d.register("t", info(4, Some(0))).unwrap();
        assert!(d.register("t", info(4, Some(0))).is_err());
        assert_eq!(d.relation("t").unwrap().fragments.len(), 4);
        assert_eq!(d.relation_names(), vec!["t".to_owned()]);
        d.unregister("t").unwrap();
        assert!(d.relation("t").is_err());
    }

    #[test]
    fn hash_routing_is_deterministic_and_spread() {
        let d = dict();
        d.register("t", info(4, Some(0))).unwrap();
        let info = d.relation("t").unwrap();
        let mut seen = vec![0usize; 4];
        for i in 0..100 {
            let row = tuple![i, "x"];
            let f = info.route(row.values()).unwrap();
            assert_eq!(f, info.route(row.values()).unwrap());
            seen[f] += 1;
        }
        assert!(seen.iter().all(|&c| c > 10), "skewed routing: {seen:?}");
    }

    #[test]
    fn routing_into_zero_fragments_errors_instead_of_panicking() {
        // Regression: both routing arms used to end in `% fragments.len()`,
        // a modulo-by-zero panic for a fragment-less relation.
        let empty = info(0, Some(0));
        let row = tuple![1, "x"];
        assert!(matches!(
            empty.route(row.values()),
            Err(PrismaError::Execution(m)) if m.contains("no fragments")
        ));
        let empty_rr = info(0, None);
        assert!(empty_rr.route(row.values()).is_err());
    }

    #[test]
    fn failover_flips_to_backup_and_bumps_epoch() {
        let d = dict();
        let mut i = info(2, Some(0));
        i.fragments[0] = FragmentHandle::new(FragmentId(0), PeId(0), ProcessId(0))
            .with_backup(PeId(3), ProcessId(30));
        d.register("t", i).unwrap();

        let flipped = d.fail_over_fragment(FragmentId(0)).unwrap();
        assert_eq!(flipped.pe, PeId(3));
        assert_eq!(flipped.actor, ProcessId(30));
        assert_eq!(flipped.epoch, 1);
        assert!(flipped.backup.is_none(), "backup was consumed");
        // The dictionary view reflects the flip.
        let after = d.relation("t").unwrap();
        assert_eq!(after.fragments[0].pe, PeId(3));
        assert_eq!(after.fragments[0].epoch, 1);

        // A second failure of the same fragment has nowhere to go.
        assert!(matches!(
            d.fail_over_fragment(FragmentId(0)),
            Err(PrismaError::MachineFault(m)) if m.contains("no backup")
        ));
        // Unreplicated fragments fail over with the same clear error.
        assert!(d.fail_over_fragment(FragmentId(1)).is_err());
        // Unknown fragments are named.
        assert!(matches!(
            d.fail_over_fragment(FragmentId(99)),
            Err(PrismaError::NoSuchFragment(_))
        ));
        assert_eq!(d.fragment_handle(FragmentId(0)).unwrap().pe, PeId(3));
        assert!(d.fragment_handle(FragmentId(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "distinct PE")]
    fn backup_on_the_primary_pe_is_rejected() {
        let _ = FragmentHandle::new(FragmentId(0), PeId(1), ProcessId(0))
            .with_backup(PeId(1), ProcessId(1));
    }

    #[test]
    fn stable_services_shared_within_stride() {
        let d = dict();
        let a = d.stable_for(PeId(1));
        let b = d.stable_for(PeId(7));
        let c = d.stable_for(PeId(8));
        assert!(Arc::ptr_eq(&a.wal, &b.wal), "PE1 and PE7 share disk PE0");
        assert!(!Arc::ptr_eq(&a.wal, &c.wal), "PE8 has its own disk");
    }

    #[test]
    fn stats_fallback_has_relation_arity() {
        let d = dict();
        d.register("t", info(2, None)).unwrap();
        let s = d.table_stats("t").unwrap();
        assert_eq!(s.distinct.len(), 2);
        assert!(d.table_stats("ghost").is_none());
        d.put_stats(
            "t",
            TableStats {
                rows: 5,
                distinct: vec![5, 5],
                min: vec![None, None],
                max: vec![None, None],
                ..TableStats::default()
            },
        );
        d.note_mutation("t", 3);
        assert_eq!(d.table_stats("t").unwrap().rows, 8);
    }

    #[test]
    fn fragment_stats_cache_merge_and_freshness() {
        use prisma_types::{ColumnStats, FragmentStatistics};
        let d = dict();
        d.register("t", info(2, Some(0))).unwrap();
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Absent);

        let frag = |rows: u64, lo: i64, hi: i64| FragmentStatistics {
            rows,
            bytes: rows * 16,
            columns: vec![
                ColumnStats {
                    distinct: rows,
                    min: Some(Value::Int(lo)),
                    max: Some(Value::Int(hi)),
                    ..ColumnStats::default()
                },
                ColumnStats::default(),
            ],
        };
        // One of two fragments reported: usable but stale.
        d.put_fragment_stats("t", FragmentId(0), frag(10, 0, 9));
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Stale);
        assert_eq!(d.table_stats("t").unwrap().rows, 10);

        // Both reported at the current epoch: fresh, merged.
        d.put_fragment_stats("t", FragmentId(1), frag(20, 10, 29));
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Fresh);
        let merged = d.table_stats("t").unwrap();
        assert_eq!(merged.rows, 30);
        assert_eq!(merged.min[0], Some(Value::Int(0)));
        assert_eq!(merged.max[0], Some(Value::Int(29)));
        // Column 0 is the hash-fragmentation column: distinct sums.
        assert_eq!(merged.distinct[0], 30);
        assert_eq!(d.fragment_stats("t").unwrap().len(), 2);

        // DML bumps the epoch: stats go stale, merged rows track the
        // pending delta until the next refresh.
        d.note_mutation("t", 5);
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Stale);
        assert_eq!(d.table_stats("t").unwrap().rows, 35);

        // Re-reporting both fragments at the new epoch subsumes the
        // delta and restores freshness.
        d.put_fragment_stats("t", FragmentId(0), frag(15, 0, 14));
        d.put_fragment_stats("t", FragmentId(1), frag(20, 10, 29));
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Fresh);
        assert_eq!(d.table_stats("t").unwrap().rows, 35);
    }

    #[test]
    fn partial_refresh_does_not_double_count_pending_rows() {
        use prisma_types::{ColumnStats, FragmentStatistics};
        let d = dict();
        d.register("t", info(2, None)).unwrap();
        let frag = |rows: u64| FragmentStatistics {
            rows,
            bytes: rows * 16,
            columns: vec![ColumnStats::default(), ColumnStats::default()],
        };
        d.put_fragment_stats("t", FragmentId(0), frag(10));
        d.put_fragment_stats("t", FragmentId(1), frag(10));
        assert_eq!(d.table_stats("t").unwrap().rows, 20);

        // 5 rows into fragment 0; its re-report (15 rows) subsumes the
        // delta even though fragment 1 never re-reported — the merged
        // count must be 25, not 30.
        d.note_mutation_by_fragment("t", &[(FragmentId(0), 5)]);
        assert_eq!(d.table_stats("t").unwrap().rows, 25);
        d.put_fragment_stats("t", FragmentId(0), frag(15));
        assert_eq!(d.table_stats("t").unwrap().rows, 25);
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Stale);

        // Fragment 1's re-report completes the refresh: fresh, exact.
        d.put_fragment_stats("t", FragmentId(1), frag(10));
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Fresh);
        assert_eq!(d.table_stats("t").unwrap().rows, 25);

        // A DML batch that changed nothing leaves the reports exact —
        // freshness must not flip.
        d.note_mutation_by_fragment("t", &[(FragmentId(0), 0), (FragmentId(1), 0)]);
        assert_eq!(d.stats_freshness("t"), prisma_types::StatsFreshness::Fresh);
        assert_eq!(d.table_stats("t").unwrap().rows, 25);
    }

    #[test]
    fn fragment_ids_unique() {
        let d = dict();
        let a = d.alloc_fragment_id();
        let b = d.alloc_fragment_id();
        assert_ne!(a, b);
    }
}
