//! The transaction manager: two-phase commit across OFM participants.
//!
//! The GDH is the 2PC coordinator. Persistent OFMs force `Prepared` and
//! `Commit` records to their disk PE's WAL; the coordinator forces its own
//! decision record before phase 2, so recovery can always resolve in-doubt
//! participants. Lock release (strict 2PL) happens only after the
//! decision.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use prisma_poolx::PoolRuntime;
use prisma_stable::{LogPayload, WriteAheadLog};
use prisma_types::{PrismaError, ProcessId, Result, TxnId};

use crate::locks::LockManager;
use crate::message::GdhMsg;

/// Fallback participant-reply timeout when none is configured (the GDH
/// passes `MachineConfig::reply_timeout` through `with_reply_timeout`).
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug, Default)]
struct TxnState {
    participants: HashSet<ProcessId>,
}

/// Outcome metrics of a 2PC commit (E7 measures these).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitMetrics {
    /// Participants involved.
    pub participants: usize,
    /// Total simulated disk ns forced across participants + coordinator.
    pub disk_ns: u64,
    /// Messages exchanged (prepare + votes + commits + acks).
    pub messages: u64,
}

/// The 2PC coordinator.
pub struct TransactionManager {
    runtime: Arc<PoolRuntime<GdhMsg>>,
    locks: Arc<LockManager>,
    coordinator_log: Arc<WriteAheadLog>,
    next: AtomicU32,
    active: Mutex<HashMap<TxnId, TxnState>>,
    reply_timeout: Duration,
}

impl TransactionManager {
    /// Coordinator over the runtime, lock manager and a coordinator WAL.
    pub fn new(
        runtime: Arc<PoolRuntime<GdhMsg>>,
        locks: Arc<LockManager>,
        coordinator_log: Arc<WriteAheadLog>,
    ) -> Self {
        TransactionManager {
            runtime,
            locks,
            coordinator_log,
            next: AtomicU32::new(1),
            active: Mutex::new(HashMap::new()),
            reply_timeout: DEFAULT_REPLY_TIMEOUT,
        }
    }

    /// Override the participant-reply timeout (from the machine config).
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// The lock manager (shared with the executor).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let txn = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        self.coordinator_log.append(&LogPayload::Begin { txn });
        self.active.lock().insert(txn, TxnState::default());
        txn
    }

    /// Record that `txn` touched the OFM served by `actor`.
    pub fn register_participant(&self, txn: TxnId, actor: ProcessId) -> Result<()> {
        let mut active = self.active.lock();
        let st = active.get_mut(&txn).ok_or(PrismaError::UnknownTxn(txn))?;
        st.participants.insert(actor);
        Ok(())
    }

    /// Participants registered so far.
    pub fn participants_of(&self, txn: TxnId) -> Vec<ProcessId> {
        self.active
            .lock()
            .get(&txn)
            .map(|s| s.participants.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Two-phase commit. On any no-vote or participant failure the
    /// transaction is aborted everywhere and the error is returned.
    pub fn commit(&self, txn: TxnId) -> Result<CommitMetrics> {
        let state = self
            .active
            .lock()
            .remove(&txn)
            .ok_or(PrismaError::UnknownTxn(txn))?;
        let participants: Vec<ProcessId> = state.participants.iter().copied().collect();
        let mut metrics = CommitMetrics {
            participants: participants.len(),
            ..CommitMetrics::default()
        };

        // Read-only transactions skip 2PC entirely.
        if participants.is_empty() {
            self.coordinator_log.append(&LogPayload::Commit { txn });
            self.locks.release_all(txn);
            return Ok(metrics);
        }

        // Phase 1: prepare.
        let mailbox = self.runtime.external_mailbox();
        for (i, &p) in participants.iter().enumerate() {
            self.runtime.send(
                p,
                GdhMsg::Prepare {
                    txn,
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
            metrics.messages += 1;
        }
        let mut all_yes = true;
        // One deadline bounds the whole vote collection (each reply
        // narrows the remaining wait; see the same fix in gdh.rs).
        let started = Instant::now();
        let deadline = started + self.reply_timeout;
        let mut pending: HashMap<u64, ProcessId> = participants
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u64, p))
            .collect();
        while !pending.is_empty() {
            match mailbox.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(GdhMsg::Vote { tag, result }) => {
                    pending.remove(&tag);
                    metrics.messages += 1;
                    match result {
                        Ok(ns) => metrics.disk_ns += ns,
                        Err(_) => all_yes = false,
                    }
                }
                Ok(_) => {} // stray non-vote traffic; keep waiting
                Err(_) => {
                    // A silent participant (crashed PE, dropped vote):
                    // abort everywhere and name exactly who never voted.
                    self.abort_participants(txn, &participants)?;
                    self.coordinator_log
                        .append_durable(&LogPayload::Abort { txn });
                    self.locks.release_all(txn);
                    return Err(Self::phase_timeout(
                        txn,
                        "prepare",
                        started,
                        &pending,
                        participants.len(),
                    ));
                }
            }
        }
        if !all_yes {
            self.abort_participants(txn, &participants)?;
            self.coordinator_log
                .append_durable(&LogPayload::Abort { txn });
            self.locks.release_all(txn);
            return Err(PrismaError::TxnAborted {
                txn,
                reason: "participant voted no in 2PC".into(),
            });
        }

        // Decision point: force the coordinator's commit record.
        let (_, ns) = self
            .coordinator_log
            .append_durable(&LogPayload::Commit { txn });
        metrics.disk_ns += ns;

        // Phase 2: commit everywhere.
        for (i, &p) in participants.iter().enumerate() {
            self.runtime.send(
                p,
                GdhMsg::Commit {
                    txn,
                    reply_to: mailbox.id,
                    tag: i as u64,
                },
            )?;
            metrics.messages += 1;
        }
        let started = Instant::now();
        let deadline = started + self.reply_timeout;
        let mut pending: HashMap<u64, ProcessId> = participants
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u64, p))
            .collect();
        while !pending.is_empty() {
            match mailbox.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(GdhMsg::Ack { tag, result }) => {
                    pending.remove(&tag);
                    metrics.messages += 1;
                    if let Ok(ns) = result {
                        metrics.disk_ns += ns;
                    }
                }
                Ok(_) => {} // stray non-ack traffic; keep waiting
                Err(_) => {
                    // The decision is durable: the transaction IS
                    // committed, the silent participant applies it on
                    // recovery. Release locks and surface who hung.
                    self.locks.release_all(txn);
                    return Err(Self::phase_timeout(
                        txn,
                        "commit",
                        started,
                        &pending,
                        participants.len(),
                    ));
                }
            }
        }
        self.locks.release_all(txn);
        Ok(metrics)
    }

    /// Context-rich reply-timeout error for one 2PC phase: names the
    /// transaction, the phase, the elapsed time, and every still-silent
    /// participant by actor and tag — mirroring the executor's stream
    /// timeouts, so an operator can tell *which* PE hung, not just that
    /// something did.
    fn phase_timeout(
        txn: TxnId,
        phase: &str,
        started: Instant,
        pending: &HashMap<u64, ProcessId>,
        total: usize,
    ) -> PrismaError {
        let mut silent: Vec<String> = pending
            .iter()
            .map(|(tag, p)| format!("{p} (tag {tag})"))
            .collect();
        silent.sort();
        PrismaError::Execution(format!(
            "{txn}: 2PC {phase} reply timeout after {:.3}s — {} of {} participant(s) silent: [{}]",
            started.elapsed().as_secs_f64(),
            pending.len(),
            total,
            silent.join(", ")
        ))
    }

    /// Abort a transaction everywhere and release its locks.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let state = self.active.lock().remove(&txn);
        if let Some(state) = state {
            let participants: Vec<ProcessId> = state.participants.iter().copied().collect();
            self.abort_participants(txn, &participants)?;
        }
        self.coordinator_log.append(&LogPayload::Abort { txn });
        self.locks.release_all(txn);
        Ok(())
    }

    fn abort_participants(&self, txn: TxnId, participants: &[ProcessId]) -> Result<()> {
        if participants.is_empty() {
            return Ok(());
        }
        let mailbox = self.runtime.external_mailbox();
        let mut sent = 0;
        for (i, &p) in participants.iter().enumerate() {
            if self
                .runtime
                .send(
                    p,
                    GdhMsg::Abort {
                        txn,
                        reply_to: mailbox.id,
                        tag: i as u64,
                    },
                )
                .is_ok()
            {
                sent += 1;
            }
        }
        let deadline = Instant::now() + self.reply_timeout;
        for _ in 0..sent {
            let _ = mailbox.recv_timeout(deadline.saturating_duration_since(Instant::now()));
        }
        Ok(())
    }
}
