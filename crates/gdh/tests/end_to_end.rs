//! End-to-end tests of the Global Data Handler: SQL, PRISMAlog,
//! transactions, concurrency, recovery — on a small simulated machine.

use prisma_gdh::{AllocationPolicy, GlobalDataHandler};
use prisma_stable::DiskProfile;
use prisma_types::{tuple, MachineConfig, TopologyKind};

fn machine(pes: usize) -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: pes,
        topology: if pes >= 4 {
            TopologyKind::Mesh
        } else {
            TopologyKind::FullyConnected
        },
        ..MachineConfig::default()
    };
    GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant()).unwrap()
}

fn setup_emp(gdh: &GlobalDataHandler) {
    gdh.execute_sql(
        "CREATE TABLE emp (id INT, dept INT, sal DOUBLE) FRAGMENTED BY HASH(id) INTO 4",
    )
    .unwrap();
    gdh.execute_sql("CREATE TABLE dept (id INT, name STRING) FRAGMENTED INTO 2")
        .unwrap();
    let mut values = String::new();
    for i in 0..100 {
        if i > 0 {
            values.push(',');
        }
        values.push_str(&format!("({i}, {}, {}.0)", i % 5, 100 + i));
    }
    let n = gdh
        .execute_sql(&format!("INSERT INTO emp VALUES {values}"))
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 100);
    gdh.execute_sql(
        "INSERT INTO dept VALUES (0,'eng'), (1,'sales'), (2,'hr'), (3,'ops'), (4,'lab')",
    )
    .unwrap();
    gdh.refresh_stats("emp").unwrap();
    gdh.refresh_stats("dept").unwrap();
}

#[test]
fn sql_select_where_orderby() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql("SELECT id FROM emp WHERE sal >= 195.0 ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    let ids: Vec<i64> = rows
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![95, 96, 97, 98, 99]);
    gdh.shutdown();
}

#[test]
fn sql_distributed_join_matches_expectation() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT e.id, d.name FROM emp e, dept d \
             WHERE e.dept = d.id AND d.name = 'eng' ORDER BY e.id",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 20); // dept 0 has ids 0,5,10,...,95
    assert_eq!(rows.tuples()[0], tuple![0, "eng"]);
    gdh.shutdown();
}

#[test]
fn sql_parallel_aggregation() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT dept, COUNT(*) AS n, SUM(sal) AS total FROM emp \
             GROUP BY dept ORDER BY dept",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 5);
    for t in rows.tuples() {
        assert_eq!(t.get(1).as_int(), Some(20));
    }
    // Global aggregate.
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n, AVG(sal) AS a FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(100));
    let avg = rows.tuples()[0].get(1).as_double().unwrap();
    assert!((avg - 149.5).abs() < 1e-9);
    gdh.shutdown();
}

#[test]
fn dml_update_delete_roundtrip() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let n = gdh
        .execute_sql("UPDATE emp SET sal = sal + 1000 WHERE dept = 3")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp WHERE sal > 1000")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(20));
    let n = gdh
        .execute_sql("DELETE FROM emp WHERE dept = 3")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(80));
    gdh.shutdown();
}

#[test]
fn explicit_transaction_abort_rolls_back_across_fragments() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let txn = gdh.begin();
    gdh.execute_sql_in(txn, "DELETE FROM emp WHERE dept = 1")
        .unwrap();
    gdh.execute_sql_in(txn, "INSERT INTO emp VALUES (999, 9, 9.0)")
        .unwrap();
    gdh.abort(txn).unwrap();
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rows.tuples()[0].get(0).as_int(),
        Some(100),
        "abort must undo the delete and the insert on every fragment"
    );
    gdh.shutdown();
}

#[test]
fn two_phase_commit_makes_changes_durable_across_recovery() {
    let gdh = machine(8);
    setup_emp(&gdh);
    // Committed change.
    gdh.execute_sql("UPDATE emp SET sal = 0.0 WHERE id = 7")
        .unwrap();
    // Crash every stable device's unsynced tail, then rebuild the
    // relation from checkpoints + committed WAL suffixes.
    gdh.recover_relation("emp").unwrap();
    let rows = gdh
        .execute_sql("SELECT sal FROM emp WHERE id = 7")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples()[0].get(0).as_double(), Some(0.0));
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(100));
    gdh.shutdown();
}

#[test]
fn checkpoint_bounds_recovery_replay() {
    let gdh = machine(4);
    setup_emp(&gdh);
    gdh.checkpoint("emp").unwrap();
    gdh.execute_sql("DELETE FROM emp WHERE id = 0").unwrap();
    gdh.recover_relation("emp").unwrap();
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(99));
    gdh.shutdown();
}

#[test]
fn prismalog_transitive_closure_over_fragmented_edb() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE parent (p STRING, c STRING) FRAGMENTED BY HASH(p) INTO 3")
        .unwrap();
    gdh.execute_sql(
        "INSERT INTO parent VALUES ('john','mary'), ('mary','sue'), ('sue','tim'), ('ann','john')",
    )
    .unwrap();
    let rows = gdh
        .execute_prismalog(
            "ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
            "?- ancestor(ann, X).",
        )
        .unwrap();
    assert_eq!(rows.len(), 4);
    gdh.shutdown();
}

#[test]
fn prismalog_mutual_recursion_falls_back_to_seminaive() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE succ (a INT, b INT) FRAGMENTED INTO 2")
        .unwrap();
    gdh.execute_sql("INSERT INTO succ VALUES (0,1),(1,2),(2,3),(3,4),(4,5)")
        .unwrap();
    let rows = gdh
        .execute_prismalog(
            "even(0).
             even(Y) :- succ(X, Y), odd(X).
             odd(Y) :- succ(X, Y), even(X).",
            "?- even(X).",
        )
        .unwrap();
    let mut evens: Vec<i64> = rows
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    evens.sort_unstable();
    assert_eq!(evens, vec![0, 2, 4]);
    gdh.shutdown();
}

#[test]
fn sql_closure_table_function_distributed() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY HASH(src) INTO 3")
        .unwrap();
    gdh.execute_sql("INSERT INTO edge VALUES (1,2),(2,3),(3,4),(10,11)")
        .unwrap();
    let rows = gdh
        .execute_sql("SELECT * FROM CLOSURE(edge) c WHERE c.src = 1 ORDER BY c.dst")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 3); // 1→2, 1→3, 1→4
    gdh.shutdown();
}

#[test]
fn inter_query_parallelism_on_disjoint_relations() {
    use std::sync::Arc;
    let gdh = Arc::new(machine(8));
    setup_emp(&gdh);
    gdh.execute_sql("CREATE TABLE other (x INT) FRAGMENTED INTO 2")
        .unwrap();
    gdh.execute_sql("INSERT INTO other VALUES (1),(2),(3)")
        .unwrap();
    let mut handles = Vec::new();
    for i in 0..6 {
        let gdh = gdh.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let sql = if i % 2 == 0 {
                    "SELECT COUNT(*) AS n FROM emp WHERE sal > 120.0"
                } else {
                    "SELECT COUNT(*) AS n FROM other"
                };
                let rows = gdh.execute_sql(sql).unwrap().rows().unwrap();
                assert_eq!(rows.len(), 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    gdh.shutdown();
}

#[test]
fn writers_serialize_on_the_same_relation() {
    use std::sync::Arc;
    let gdh = Arc::new(machine(4));
    gdh.execute_sql("CREATE TABLE counter (id INT, v INT) FRAGMENTED INTO 1")
        .unwrap();
    gdh.execute_sql("INSERT INTO counter VALUES (1, 0)").unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let gdh = gdh.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                gdh.execute_sql("UPDATE counter SET v = v + 1 WHERE id = 1")
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rows = gdh
        .execute_sql("SELECT v FROM counter WHERE id = 1")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rows.tuples()[0].get(0).as_int(),
        Some(40),
        "strict 2PL must serialize the 40 increments"
    );
    gdh.shutdown();
}

#[test]
fn explain_shows_rule_firings() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let plan = gdh
        .explain_sql(
            "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND e.sal > 150.0",
        )
        .unwrap();
    assert!(plan.contains("extract-join-keys"), "{plan}");
    assert!(plan.contains("push-selection"), "{plan}");
    gdh.shutdown();
}

#[test]
fn union_except_and_set_semantics() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT dept FROM emp UNION SELECT id FROM dept",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 5); // depts 0..4 in both
    let rows = gdh
        .execute_sql("SELECT id FROM dept EXCEPT SELECT dept FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 0);
    gdh.shutdown();
}

#[test]
fn errors_are_clean_not_panics() {
    let gdh = machine(4);
    assert!(gdh.execute_sql("SELECT * FROM ghost").is_err());
    assert!(gdh.execute_sql("CREATE TABLE t (a WIBBLE)").is_err());
    gdh.execute_sql("CREATE TABLE t (a INT)").unwrap();
    assert!(gdh.execute_sql("CREATE TABLE t (a INT)").is_err());
    assert!(gdh.execute_sql("INSERT INTO t VALUES ('str')").is_err());
    // The machine still works after errors.
    gdh.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    gdh.shutdown();
}

#[test]
fn stats_report_round_trip_through_dictionary() {
    use prisma_optimizer::StatsSource;
    use prisma_types::{StatsFreshness, Value};

    let gdh = machine(8);
    gdh.execute_sql("CREATE TABLE t (k INT, v INT) FRAGMENTED BY HASH(k) INTO 4")
        .unwrap();
    let mut values = String::new();
    for i in 0..500 {
        if i > 0 {
            values.push(',');
        }
        // k uniform 0..500; v skewed: 7 half the time.
        values.push_str(&format!("({i}, {})", if i % 2 == 0 { 7 } else { i }));
    }
    gdh.execute_sql(&format!("INSERT INTO t VALUES {values}"))
        .unwrap();

    // Before any refresh: nothing collected.
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Absent);

    // CollectStats → StatsReport → dictionary cache.
    gdh.refresh_stats("t").unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Fresh);
    let frags = gdh.dictionary().fragment_stats("t").unwrap();
    assert_eq!(frags.len(), 4, "every fragment reports");
    assert_eq!(frags.iter().map(|(_, s)| s.rows).sum::<u64>(), 500);
    for (_, s) in &frags {
        assert_eq!(s.columns.len(), 2);
        assert!(s.columns[0].histogram.is_some(), "histograms travel");
    }

    // The merged table-level view the estimator consumes.
    let ts = StatsSource::table_stats(&**gdh.dictionary(), "t").unwrap();
    assert_eq!(ts.rows, 500);
    assert_eq!(ts.min[0], Some(Value::Int(0)));
    assert_eq!(ts.max[0], Some(Value::Int(499)));
    assert!(ts.hist_of(0).is_some());
    // The skewed column's heavy hitter survives the MCV merge.
    // 7 appears for every even i (250×) plus i = 7 itself.
    assert_eq!(ts.mcv_of(1).first().unwrap().0, Value::Int(7));
    assert_eq!(ts.mcv_of(1).first().unwrap().1, 251);

    // DML bumps the epoch: stale until the next refresh, with the row
    // delta tracked meanwhile.
    gdh.execute_sql("INSERT INTO t VALUES (1000, 1000)").unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Stale);
    assert_eq!(
        StatsSource::table_stats(&**gdh.dictionary(), "t").unwrap().rows,
        501
    );
    gdh.refresh_stats("t").unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Fresh);
    assert_eq!(
        StatsSource::table_stats(&**gdh.dictionary(), "t").unwrap().rows,
        501
    );

    // DML that changes nothing leaves the reports exact — no staling.
    gdh.execute_sql("DELETE FROM t WHERE k = -42").unwrap();
    gdh.execute_sql("UPDATE t SET v = 0 WHERE k = -42").unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Fresh);
    // A value-changing UPDATE (row count unchanged) does stale them.
    gdh.execute_sql("UPDATE t SET v = 1 WHERE k = 1").unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Stale);

    // An aborted transaction's DML never reaches the dictionary: the
    // fragments rolled back, so the reports stay exact and row
    // estimates must not count the phantom rows.
    gdh.refresh_stats("t").unwrap();
    let before = StatsSource::table_stats(&**gdh.dictionary(), "t")
        .unwrap()
        .rows;
    let txn = gdh.begin();
    gdh.execute_sql_in(txn, "INSERT INTO t VALUES (9001, 1), (9002, 2)")
        .unwrap();
    gdh.abort(txn).unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Fresh);
    assert_eq!(
        StatsSource::table_stats(&**gdh.dictionary(), "t").unwrap().rows,
        before
    );
    // The same DML committed does land.
    let txn = gdh.begin();
    gdh.execute_sql_in(txn, "INSERT INTO t VALUES (9001, 1), (9002, 2)")
        .unwrap();
    gdh.commit(txn).unwrap();
    assert_eq!(gdh.dictionary().stats_freshness("t"), StatsFreshness::Stale);
    assert_eq!(
        StatsSource::table_stats(&**gdh.dictionary(), "t").unwrap().rows,
        before + 2
    );
    gdh.shutdown();
}

#[test]
fn explain_names_cardinalities_and_stats_freshness() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let out = gdh
        .explain_sql("SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND e.sal > 150.0")
        .unwrap();
    assert!(
        out.contains("stats-source: emp: fresh"),
        "missing emp freshness:\n{out}"
    );
    assert!(
        out.contains("stats-source: dept: fresh"),
        "missing dept freshness:\n{out}"
    );
    assert!(
        out.contains("physical-cardinality: Scan(emp): est 100 row(s)"),
        "missing scan estimate:\n{out}"
    );

    // EXPLAIN ANALYZE adds per-operator actuals.
    let out = gdh
        .explain_analyze_sql("SELECT id FROM emp WHERE sal > 150.0")
        .unwrap();
    assert!(out.contains("== estimated vs actual =="), "{out}");
    assert!(out.contains("actual 49"), "49 rows satisfy sal>150:\n{out}");
    assert!(out.contains("[stats fresh]"), "{out}");

    // A never-profiled relation is called out as absent.
    gdh.execute_sql("CREATE TABLE ghostly (a INT)").unwrap();
    let out = gdh.explain_sql("SELECT a FROM ghostly").unwrap();
    assert!(out.contains("stats-source: ghostly: absent"), "{out}");
    gdh.shutdown();
}

// ---------------- mid-query failover (E10) ----------------

/// A 4-PE machine with a 1-second reply deadline, so a scripted PE kill
/// surfaces as a fast failover instead of a minute-long stall.
fn failover_machine() -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: 4,
        topology: TopologyKind::Mesh,
        ..MachineConfig::default()
    }
    .with_reply_timeout_secs(1);
    GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant()).unwrap()
}

/// Every join in these tests is forced onto the hash-partitioned (grace)
/// path — the protocol with the most mid-flight state to lose.
fn grace() -> prisma_optimizer::PhysicalConfig {
    prisma_optimizer::PhysicalConfig {
        broadcast_max_rows: 0.0,
        ..prisma_optimizer::PhysicalConfig::default()
    }
}

#[test]
fn pe_killed_mid_grace_join_fails_over_to_backup_replica() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    let sql = "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.id";

    // Oracle: the same machine shape and data, no faults.
    let mut oracle_gdh = failover_machine();
    oracle_gdh.set_physical_config(grace());
    setup_emp(&oracle_gdh);
    let (oracle, oracle_metrics) = oracle_gdh.query_sql_with_metrics(sql).unwrap();
    assert_eq!(oracle_metrics.failovers, 0);
    assert_eq!(oracle_metrics.streams_rerequested, 0);
    oracle_gdh.shutdown();

    // Victim: an armed (but initially empty) scripted injector, so the
    // per-PE message clock ticks from boot and the kill can be scripted
    // relative to "now" after setup.
    let faults = FaultInjector::scripted(0x2026_0807, vec![]);
    let mut gdh = failover_machine();
    gdh.set_fault_injector(faults.clone());
    gdh.set_physical_config(grace());
    setup_emp(&gdh);

    // Kill PE 2 three messages into the join: mid-shuffle, after it has
    // accepted (at most) its phase-2 task and one subplan, its actors —
    // an emp primary among them — fall silent.
    faults.script(vec![FaultSpec::KillPeAtMessage {
        pe: PeId(2),
        at: faults.messages_seen(PeId(2)) + 3,
    }]);
    let (rows, metrics) = gdh.query_sql_with_metrics(sql).unwrap();

    // The reply deadline fired, the dictionary promoted the dead PE's
    // backup replicas, and the lost streams were re-requested — and the
    // merged result is bit-identical to the fault-free run.
    assert_eq!(rows.tuples(), oracle.tuples());
    assert!(
        metrics.failovers >= 1,
        "no backup promotion recorded: {metrics:?}"
    );
    assert!(
        metrics.streams_rerequested >= 1,
        "no stream re-requested: {metrics:?}"
    );
    assert!(
        faults.events().iter().any(|e| e.contains("kill")),
        "scripted kill never fired: {:?}",
        faults.events()
    );
    gdh.shutdown();
}

#[test]
fn dropped_chunk_is_rerequested_from_the_living_primary() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    let sql = "SELECT id FROM emp WHERE sal >= 150.0 ORDER BY id";

    let oracle_gdh = failover_machine();
    setup_emp(&oracle_gdh);
    let (oracle, _) = oracle_gdh.query_sql_with_metrics(sql).unwrap();
    oracle_gdh.shutdown();

    // Drop the first stream chunk each of two PEs ships. Setup ships no
    // stream chunks (DML and stats travel as replies), so ordinal 1 is
    // the query's first batch from that PE.
    let faults = FaultInjector::scripted(
        7,
        vec![
            FaultSpec::DropChunk { pe: PeId(1), nth: 1 },
            FaultSpec::DropChunk { pe: PeId(3), nth: 1 },
        ],
    );
    let mut gdh = failover_machine();
    gdh.set_fault_injector(faults.clone());
    setup_emp(&gdh);
    let (rows, metrics) = gdh.query_sql_with_metrics(sql).unwrap();

    // The starved streams were re-asked of their (living) primaries:
    // no backup promotion, same rows.
    assert_eq!(rows.tuples(), oracle.tuples());
    assert_eq!(metrics.failovers, 0, "{metrics:?}");
    assert!(
        metrics.streams_rerequested >= 1,
        "no stream re-requested: {metrics:?}"
    );
    gdh.shutdown();
}

#[test]
fn crash_during_2pc_prepare_aborts_and_names_the_silent_participant() {
    use prisma_faultx::{FaultInjector, FaultSpec, TwoPcPhase};
    use prisma_types::PeId;

    let faults = FaultInjector::scripted(
        11,
        vec![FaultSpec::CrashDuring2pc {
            pe: PeId(1),
            phase: TwoPcPhase::Prepare,
        }],
    );
    let mut gdh = failover_machine();
    gdh.set_fault_injector(faults.clone());
    gdh.execute_sql("CREATE TABLE t (k INT, v INT) FRAGMENTED BY HASH(k) INTO 4")
        .unwrap();

    let txn = gdh.begin();
    gdh.execute_sql_in(txn, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
        .unwrap();
    let err = gdh.commit(txn).unwrap_err().to_string();
    assert!(err.contains("2PC prepare reply timeout"), "{err}");
    assert!(err.contains("participant(s) silent"), "{err}");
    assert!(
        faults.events().iter().any(|e| e.contains("2PC")),
        "{:?}",
        faults.events()
    );

    // The machine survives: the aborted rows are absent and new work on
    // the surviving PEs proceeds.
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM t")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(0));
    gdh.shutdown();
}

// ---------------- columnar wire format (E11) ----------------

#[test]
fn columnar_and_row_wire_agree_end_to_end() {
    // Differential over the wire formats: the same machine shape and
    // data, queried once over typed column blocks (the default) and once
    // over the row-wire baseline, must produce identical results on
    // streamed scans, grace joins and distributed aggregates.
    let queries = [
        "SELECT id FROM emp WHERE sal >= 150.0 ORDER BY id",
        "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.id",
        "SELECT dept, COUNT(*) AS n, SUM(sal) AS total FROM emp GROUP BY dept ORDER BY dept",
    ];
    let mut columnar = machine(4);
    assert_eq!(
        columnar.executor_columnar_wire(),
        prisma_types::wire::columnar_wire_default(),
        "executor wire must follow the configured default"
    );
    // Pin both sides so the differential holds under a row-wire
    // environment (`PRISMA_ROW_WIRE=1`, the CI baseline lane).
    columnar.set_columnar_wire(true);
    setup_emp(&columnar);
    let mut row = machine(4);
    row.set_columnar_wire(false);
    assert!(!row.executor_columnar_wire());
    setup_emp(&row);
    for sql in queries {
        let a = columnar.execute_sql(sql).unwrap().rows().unwrap();
        let b = row.execute_sql(sql).unwrap().rows().unwrap();
        assert_eq!(a.tuples(), b.tuples(), "wire formats disagree on {sql}");
    }
    columnar.shutdown();
    row.shutdown();
}

#[test]
fn corrupted_batch_chunk_fails_the_query_and_spares_the_machine() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    // Mangle the first stream chunk every PE ships: whichever fragment
    // replies first, its encoded frame arrives bit-damaged. The decoder
    // must reject it as a protocol error — never panic, never hand the
    // merge silently wrong rows.
    let faults = FaultInjector::scripted(
        21,
        (0..4)
            .map(|pe| FaultSpec::CorruptChunk { pe: PeId(pe), nth: 1 })
            .collect(),
    );
    let mut gdh = machine(4);
    // The corruption target is the encoded frame, so pin the columnar
    // wire (row chunks ship tuple vectors — nothing decodes).
    gdh.set_columnar_wire(true);
    gdh.set_fault_injector(faults.clone());
    setup_emp(&gdh);
    let err = gdh
        .execute_sql("SELECT id FROM emp ORDER BY id")
        .unwrap_err()
        .to_string();
    assert!(err.contains("wire"), "not a wire protocol error: {err}");
    assert!(
        faults.events().iter().any(|e| e.contains("Corrupt")),
        "scripted corruption never fired: {:?}",
        faults.events()
    );
    // The damage was confined to the one query: the machine keeps
    // serving, and a clean re-run returns the full relation.
    let rows = gdh
        .execute_sql("SELECT id FROM emp ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 100);
    gdh.shutdown();
}

#[test]
fn corrupted_shuffle_chunk_fails_the_join_with_a_wire_error() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    // Same fault, but during a grace join's fragment→fragment shuffle:
    // the first chunk any PE ships is a ShuffleChunk, so the mangled
    // frame is decoded at a phase-2 *site*, which must tear the exchange
    // down and fail the query through its reply stream.
    let faults = FaultInjector::scripted(
        22,
        (0..4)
            .map(|pe| FaultSpec::CorruptChunk { pe: PeId(pe), nth: 1 })
            .collect(),
    );
    let mut gdh = failover_machine();
    // As above: only the columnar wire has a frame to corrupt.
    gdh.set_columnar_wire(true);
    gdh.set_fault_injector(faults.clone());
    gdh.set_physical_config(grace());
    setup_emp(&gdh);
    let err = gdh
        .execute_sql("SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id")
        .unwrap_err()
        .to_string();
    assert!(err.contains("wire"), "not a wire protocol error: {err}");
    gdh.shutdown();
}

#[test]
fn row_wire_is_immune_to_chunk_corruption() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    // The row wire ships in-memory typed values — there is no encoded
    // byte frame to damage, so the same scripted fault delivers the
    // chunk unchanged and the query succeeds. (This is the documented
    // compatibility property of the baseline format.)
    let faults = FaultInjector::scripted(
        23,
        (0..4)
            .map(|pe| FaultSpec::CorruptChunk { pe: PeId(pe), nth: 1 })
            .collect(),
    );
    let mut gdh = machine(4);
    gdh.set_fault_injector(faults.clone());
    gdh.set_columnar_wire(false);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql("SELECT id FROM emp ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 100);
    assert!(
        faults.events().iter().any(|e| e.contains("Corrupt")),
        "the fate hook must still fire on the row wire: {:?}",
        faults.events()
    );
    gdh.shutdown();
}

#[test]
fn shuffle_stats_fold_once_across_failover_rerequests() {
    use prisma_faultx::{FaultInjector, FaultSpec};
    use prisma_types::PeId;

    // Regression: shuffle traffic stats used to fold into the query
    // metrics at every StreamEnd, so a site stream whose end arrived but
    // was then retired (lost chunk → failover re-request) was counted
    // once for the dead attempt and again for its replacement —
    // shuffled_direct_bits and relay_bits_saved roughly doubled.
    let sql = "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.id";
    let faults = FaultInjector::scripted(0x2026_0811, vec![]);
    let mut gdh = failover_machine();
    gdh.set_fault_injector(faults.clone());
    gdh.set_physical_config(grace());
    setup_emp(&gdh);

    // Fault-free run: the oracle for both rows and traffic accounting.
    // It also calibrates the chunk clock: each PE ships its shuffle
    // chunks first and its site's reply batch *last*, and the second
    // run repeats the same sends, so "twice this PE's count" is the
    // ordinal of its final reply chunk in the run below.
    let (oracle, baseline) = gdh.query_sql_with_metrics(sql).unwrap();
    assert!(baseline.shuffled_direct_bits > 0, "{baseline:?}");
    let specs: Vec<FaultSpec> = (0..4)
        .map(PeId)
        .filter(|&pe| faults.chunks_seen(pe) > 0)
        .map(|pe| FaultSpec::DropChunk { pe, nth: 2 * faults.chunks_seen(pe) })
        .collect();
    assert!(!specs.is_empty());
    faults.script(specs);

    // Victim run: every site's final reply chunk is dropped, so its
    // StreamEnd arrives while the stream is still open, the reply
    // deadline retires it, and the join is re-requested at that site.
    let (rows, metrics) = gdh.query_sql_with_metrics(sql).unwrap();
    assert_eq!(rows.tuples(), oracle.tuples());
    assert!(
        metrics.streams_rerequested >= 1,
        "no stream was re-requested — the drop never bit: {metrics:?}"
    );
    assert_eq!(metrics.failovers, 0, "no PE died: {metrics:?}");
    assert_eq!(
        metrics.shuffled_direct_bits, baseline.shuffled_direct_bits,
        "retired attempts must not inflate the shuffle ledger: {metrics:?} vs {baseline:?}"
    );
    assert_eq!(
        metrics.relay_bits_saved, baseline.relay_bits_saved,
        "retired attempts must not inflate the savings ledger: {metrics:?} vs {baseline:?}"
    );
    gdh.shutdown();
}

/// A machine whose fragments seal a column chunk every `seal_rows`
/// delta rows, so small test tables exercise the two-tier layout
/// without depending on the process-wide `SEAL_EVERY` default.
fn sealing_machine(pes: usize, seal_rows: usize) -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: pes,
        topology: TopologyKind::Mesh,
        seal_rows,
        ..MachineConfig::default()
    };
    GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant()).unwrap()
}

#[test]
fn sealing_on_scan_is_not_a_mutation() {
    let gdh = sealing_machine(8, 8);
    setup_emp(&gdh);
    let epoch_before = gdh.dictionary().mutation_epoch("emp");

    // The scan seals every fragment's delta (25 rows each, threshold 8)
    // and then serves the sealed chunks through the columnar path.
    let (rows, metrics) = gdh
        .query_sql_with_metrics("SELECT id FROM emp WHERE sal >= 100.0 ORDER BY id")
        .unwrap();
    assert_eq!(rows.len(), 100);
    assert!(
        metrics.chunks_scanned > 0,
        "scan did not reach sealed chunks — sealing never happened: {metrics:?}"
    );

    // Sealing reorganises storage without changing the row multiset:
    // the staleness model must not see it as DML.
    assert_eq!(
        gdh.dictionary().mutation_epoch("emp"),
        epoch_before,
        "sealing bumped the mutation epoch"
    );

    // Real DML still bumps it.
    gdh.execute_sql("UPDATE emp SET sal = sal + 1.0 WHERE dept = 0")
        .unwrap();
    assert!(gdh.dictionary().mutation_epoch("emp") > epoch_before);
    gdh.shutdown();
}

#[test]
fn zone_pruning_end_to_end_skips_chunks_and_keeps_results_exact() {
    // Ids arrive in increasing order, so each fragment's chunks are
    // clustered on id and a selective id predicate refutes most zones.
    let gdh = sealing_machine(8, 8);
    setup_emp(&gdh);
    let sql = "SELECT id, sal FROM emp WHERE id < 20 ORDER BY id";

    let (rows, metrics) = gdh.query_sql_with_metrics(sql).unwrap();
    assert_eq!(rows.len(), 20);
    assert!(
        metrics.chunks_pruned > 0,
        "no chunk was zone-pruned: {metrics:?}"
    );
    assert!(
        metrics.chunks_scanned + metrics.chunks_pruned > 0,
        "no sealed chunk was even considered: {metrics:?}"
    );

    // The plan surfaces the hint.
    let explain = gdh.explain_sql(sql).unwrap();
    assert!(
        explain.contains("prune"),
        "EXPLAIN does not show the prune hint:\n{explain}"
    );

    // Oracle: same data on a machine that never seals (threshold above
    // the table size), so every row flows through the row heap.
    let oracle_gdh = sealing_machine(8, 1_000_000);
    setup_emp(&oracle_gdh);
    let (oracle, oracle_metrics) = oracle_gdh.query_sql_with_metrics(sql).unwrap();
    assert_eq!(oracle_metrics.chunks_scanned + oracle_metrics.chunks_pruned, 0);
    assert_eq!(rows.tuples(), oracle.tuples());
    oracle_gdh.shutdown();
    gdh.shutdown();
}

#[test]
fn dml_after_sealing_dissolves_chunks_and_stays_exact() {
    let gdh = sealing_machine(4, 8);
    setup_emp(&gdh);

    // Seal via a scan, then mutate sealed rows: updates and deletes
    // dissolve the covering chunks back into the delta heap.
    let (_, metrics) = gdh
        .query_sql_with_metrics("SELECT COUNT(*) AS n FROM emp")
        .unwrap();
    assert!(metrics.chunks_scanned > 0);
    let n = gdh
        .execute_sql("UPDATE emp SET sal = 0.0 WHERE dept = 1")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);
    let n = gdh
        .execute_sql("DELETE FROM emp WHERE dept = 2")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);

    let rows = gdh
        .execute_sql("SELECT id FROM emp WHERE sal = 0.0 ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    let ids: Vec<i64> = rows
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    let expect: Vec<i64> = (0..100).filter(|i| i % 5 == 1).collect();
    assert_eq!(ids, expect);
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(80));
    gdh.shutdown();
}
