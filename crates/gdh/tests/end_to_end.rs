//! End-to-end tests of the Global Data Handler: SQL, PRISMAlog,
//! transactions, concurrency, recovery — on a small simulated machine.

use prisma_gdh::{AllocationPolicy, GlobalDataHandler};
use prisma_stable::DiskProfile;
use prisma_types::{tuple, MachineConfig, TopologyKind};

fn machine(pes: usize) -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: pes,
        topology: if pes >= 4 {
            TopologyKind::Mesh
        } else {
            TopologyKind::FullyConnected
        },
        ..MachineConfig::default()
    };
    GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant()).unwrap()
}

fn setup_emp(gdh: &GlobalDataHandler) {
    gdh.execute_sql(
        "CREATE TABLE emp (id INT, dept INT, sal DOUBLE) FRAGMENTED BY HASH(id) INTO 4",
    )
    .unwrap();
    gdh.execute_sql("CREATE TABLE dept (id INT, name STRING) FRAGMENTED INTO 2")
        .unwrap();
    let mut values = String::new();
    for i in 0..100 {
        if i > 0 {
            values.push(',');
        }
        values.push_str(&format!("({i}, {}, {}.0)", i % 5, 100 + i));
    }
    let n = gdh
        .execute_sql(&format!("INSERT INTO emp VALUES {values}"))
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 100);
    gdh.execute_sql(
        "INSERT INTO dept VALUES (0,'eng'), (1,'sales'), (2,'hr'), (3,'ops'), (4,'lab')",
    )
    .unwrap();
    gdh.refresh_stats("emp").unwrap();
    gdh.refresh_stats("dept").unwrap();
}

#[test]
fn sql_select_where_orderby() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql("SELECT id FROM emp WHERE sal >= 195.0 ORDER BY id")
        .unwrap()
        .rows()
        .unwrap();
    let ids: Vec<i64> = rows
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![95, 96, 97, 98, 99]);
    gdh.shutdown();
}

#[test]
fn sql_distributed_join_matches_expectation() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT e.id, d.name FROM emp e, dept d \
             WHERE e.dept = d.id AND d.name = 'eng' ORDER BY e.id",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 20); // dept 0 has ids 0,5,10,...,95
    assert_eq!(rows.tuples()[0], tuple![0, "eng"]);
    gdh.shutdown();
}

#[test]
fn sql_parallel_aggregation() {
    let gdh = machine(8);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT dept, COUNT(*) AS n, SUM(sal) AS total FROM emp \
             GROUP BY dept ORDER BY dept",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 5);
    for t in rows.tuples() {
        assert_eq!(t.get(1).as_int(), Some(20));
    }
    // Global aggregate.
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n, AVG(sal) AS a FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(100));
    let avg = rows.tuples()[0].get(1).as_double().unwrap();
    assert!((avg - 149.5).abs() < 1e-9);
    gdh.shutdown();
}

#[test]
fn dml_update_delete_roundtrip() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let n = gdh
        .execute_sql("UPDATE emp SET sal = sal + 1000 WHERE dept = 3")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp WHERE sal > 1000")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(20));
    let n = gdh
        .execute_sql("DELETE FROM emp WHERE dept = 3")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 20);
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(80));
    gdh.shutdown();
}

#[test]
fn explicit_transaction_abort_rolls_back_across_fragments() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let txn = gdh.begin();
    gdh.execute_sql_in(txn, "DELETE FROM emp WHERE dept = 1")
        .unwrap();
    gdh.execute_sql_in(txn, "INSERT INTO emp VALUES (999, 9, 9.0)")
        .unwrap();
    gdh.abort(txn).unwrap();
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rows.tuples()[0].get(0).as_int(),
        Some(100),
        "abort must undo the delete and the insert on every fragment"
    );
    gdh.shutdown();
}

#[test]
fn two_phase_commit_makes_changes_durable_across_recovery() {
    let gdh = machine(8);
    setup_emp(&gdh);
    // Committed change.
    gdh.execute_sql("UPDATE emp SET sal = 0.0 WHERE id = 7")
        .unwrap();
    // Crash every stable device's unsynced tail, then rebuild the
    // relation from checkpoints + committed WAL suffixes.
    gdh.recover_relation("emp").unwrap();
    let rows = gdh
        .execute_sql("SELECT sal FROM emp WHERE id = 7")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.tuples()[0].get(0).as_double(), Some(0.0));
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(100));
    gdh.shutdown();
}

#[test]
fn checkpoint_bounds_recovery_replay() {
    let gdh = machine(4);
    setup_emp(&gdh);
    gdh.checkpoint("emp").unwrap();
    gdh.execute_sql("DELETE FROM emp WHERE id = 0").unwrap();
    gdh.recover_relation("emp").unwrap();
    let rows = gdh
        .execute_sql("SELECT COUNT(*) AS n FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(99));
    gdh.shutdown();
}

#[test]
fn prismalog_transitive_closure_over_fragmented_edb() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE parent (p STRING, c STRING) FRAGMENTED BY HASH(p) INTO 3")
        .unwrap();
    gdh.execute_sql(
        "INSERT INTO parent VALUES ('john','mary'), ('mary','sue'), ('sue','tim'), ('ann','john')",
    )
    .unwrap();
    let rows = gdh
        .execute_prismalog(
            "ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
            "?- ancestor(ann, X).",
        )
        .unwrap();
    assert_eq!(rows.len(), 4);
    gdh.shutdown();
}

#[test]
fn prismalog_mutual_recursion_falls_back_to_seminaive() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE succ (a INT, b INT) FRAGMENTED INTO 2")
        .unwrap();
    gdh.execute_sql("INSERT INTO succ VALUES (0,1),(1,2),(2,3),(3,4),(4,5)")
        .unwrap();
    let rows = gdh
        .execute_prismalog(
            "even(0).
             even(Y) :- succ(X, Y), odd(X).
             odd(Y) :- succ(X, Y), even(X).",
            "?- even(X).",
        )
        .unwrap();
    let mut evens: Vec<i64> = rows
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    evens.sort_unstable();
    assert_eq!(evens, vec![0, 2, 4]);
    gdh.shutdown();
}

#[test]
fn sql_closure_table_function_distributed() {
    let gdh = machine(4);
    gdh.execute_sql("CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY HASH(src) INTO 3")
        .unwrap();
    gdh.execute_sql("INSERT INTO edge VALUES (1,2),(2,3),(3,4),(10,11)")
        .unwrap();
    let rows = gdh
        .execute_sql("SELECT * FROM CLOSURE(edge) c WHERE c.src = 1 ORDER BY c.dst")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 3); // 1→2, 1→3, 1→4
    gdh.shutdown();
}

#[test]
fn inter_query_parallelism_on_disjoint_relations() {
    use std::sync::Arc;
    let gdh = Arc::new(machine(8));
    setup_emp(&gdh);
    gdh.execute_sql("CREATE TABLE other (x INT) FRAGMENTED INTO 2")
        .unwrap();
    gdh.execute_sql("INSERT INTO other VALUES (1),(2),(3)")
        .unwrap();
    let mut handles = Vec::new();
    for i in 0..6 {
        let gdh = gdh.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let sql = if i % 2 == 0 {
                    "SELECT COUNT(*) AS n FROM emp WHERE sal > 120.0"
                } else {
                    "SELECT COUNT(*) AS n FROM other"
                };
                let rows = gdh.execute_sql(sql).unwrap().rows().unwrap();
                assert_eq!(rows.len(), 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    gdh.shutdown();
}

#[test]
fn writers_serialize_on_the_same_relation() {
    use std::sync::Arc;
    let gdh = Arc::new(machine(4));
    gdh.execute_sql("CREATE TABLE counter (id INT, v INT) FRAGMENTED INTO 1")
        .unwrap();
    gdh.execute_sql("INSERT INTO counter VALUES (1, 0)").unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let gdh = gdh.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                gdh.execute_sql("UPDATE counter SET v = v + 1 WHERE id = 1")
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let rows = gdh
        .execute_sql("SELECT v FROM counter WHERE id = 1")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rows.tuples()[0].get(0).as_int(),
        Some(40),
        "strict 2PL must serialize the 40 increments"
    );
    gdh.shutdown();
}

#[test]
fn explain_shows_rule_firings() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let plan = gdh
        .explain_sql(
            "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND e.sal > 150.0",
        )
        .unwrap();
    assert!(plan.contains("extract-join-keys"), "{plan}");
    assert!(plan.contains("push-selection"), "{plan}");
    gdh.shutdown();
}

#[test]
fn union_except_and_set_semantics() {
    let gdh = machine(4);
    setup_emp(&gdh);
    let rows = gdh
        .execute_sql(
            "SELECT dept FROM emp UNION SELECT id FROM dept",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 5); // depts 0..4 in both
    let rows = gdh
        .execute_sql("SELECT id FROM dept EXCEPT SELECT dept FROM emp")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 0);
    gdh.shutdown();
}

#[test]
fn errors_are_clean_not_panics() {
    let gdh = machine(4);
    assert!(gdh.execute_sql("SELECT * FROM ghost").is_err());
    assert!(gdh.execute_sql("CREATE TABLE t (a WIBBLE)").is_err());
    gdh.execute_sql("CREATE TABLE t (a INT)").unwrap();
    assert!(gdh.execute_sql("CREATE TABLE t (a INT)").is_err());
    assert!(gdh.execute_sql("INSERT INTO t VALUES ('str')").is_err());
    // The machine still works after errors.
    gdh.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    gdh.shutdown();
}
