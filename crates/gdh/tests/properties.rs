//! Property tests for the two-tier fragment storage layer.
//!
//! A fragment driven through a random interleaving of inserts (NULL-heavy
//! batches included), deletes, updates and reseal points lands in an
//! arbitrary mixed sealed/delta state. Whatever that state is, a
//! zone-pruned chunked scan — serial or pooled — must return exactly what
//! the row-oriented `relalg::eval` oracle returns, and the same property
//! must hold end-to-end through SQL on both wire formats. CI re-runs this
//! file under `OFM_WORKERS=4`, `PRISMA_ROW_WIRE=1`, `SEAL_EVERY=8` and the
//! `FAULT_SEED` chunk-delay matrix, so the single invariant is exercised
//! across the whole configuration grid.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use prisma_gdh::{AllocationPolicy, GlobalDataHandler};
use prisma_ofm::Fragment;
use prisma_relalg::{
    eval, execute_physical, lower, open_batches_pooled, Batch, ChunkedRelation, LogicalPlan,
    Relation, RelationProvider,
};
use prisma_stable::DiskProfile;
use prisma_storage::expr::{CmpOp, ScalarExpr};
use prisma_types::{
    Column, DataType, FragmentId, MachineConfig, Result, Schema, TopologyKind, Tuple, Value,
};

/// Splitmix64 step: deterministic randomness so a failing case
/// reproduces from the generated seed alone.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn frag_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::nullable("grp", DataType::Int),
        Column::nullable("val", DataType::Double),
    ])
}

/// Drive a fragment through `n_ops` random operations. Inserts come in
/// batches (some NULL-heavy, so whole chunks can seal with all-NULL
/// columns), deletes and updates hit sealed and delta rows alike
/// (dissolving chunks), and explicit reseal points reseal mid-history.
fn drive(seed: &mut u64, seal_rows: usize, n_ops: usize) -> Fragment {
    let mut frag = Fragment::new(FragmentId(0), frag_schema());
    frag.set_seal_rows(seal_rows);
    let mut next_id = 0i64;
    for _ in 0..n_ops {
        match next(seed) % 10 {
            0..=4 => {
                // Insert a batch; roughly one batch in four is NULL-heavy.
                let rows = (next(seed) % (2 * seal_rows as u64 + 1)) as usize;
                let null_heavy = next(seed).is_multiple_of(4);
                for _ in 0..rows {
                    let grp = if null_heavy || next(seed).is_multiple_of(8) {
                        Value::Null
                    } else {
                        Value::Int((next(seed) % 5) as i64)
                    };
                    let val = if null_heavy {
                        Value::Null
                    } else {
                        Value::Double((next(seed) % 100) as f64)
                    };
                    frag.insert(Tuple::new(vec![Value::Int(next_id), grp, val]))
                        .unwrap();
                    next_id += 1;
                }
            }
            5 | 6 => {
                // Delete a random live row (sealed or delta).
                let rids = frag.heap().rids();
                if !rids.is_empty() {
                    let rid = rids[(next(seed) as usize) % rids.len()];
                    frag.delete(rid);
                }
            }
            7 | 8 => {
                // Update a random live row in place.
                let rids = frag.heap().rids();
                if !rids.is_empty() {
                    let rid = rids[(next(seed) as usize) % rids.len()];
                    let mut vals = frag.heap().get(rid).unwrap().values().to_vec();
                    vals[2] = Value::Double((next(seed) % 100) as f64);
                    frag.update(rid, Tuple::new(vals)).unwrap();
                }
            }
            _ => frag.seal(), // explicit reseal point
        }
    }
    frag
}

/// Provider snapshotting a fragment both ways: the flat row multiset
/// (oracle path) and the sealed-chunks + delta two-tier form.
struct FragDb {
    rows: HashMap<String, Relation>,
    chunked: Option<Arc<ChunkedRelation>>,
}

impl FragDb {
    fn snapshot(frag: &Fragment) -> FragDb {
        let rows = HashMap::from([(
            "t".to_owned(),
            Relation::new(frag.schema().clone(), frag.all_tuples()),
        )]);
        let chunked = (frag.sealed_count() > 0).then(|| {
            Arc::new(ChunkedRelation::new(
                frag.sealed_chunks(),
                Relation::new(frag.schema().clone(), frag.delta_tuples()),
            ))
        });
        FragDb { rows, chunked }
    }
}

impl RelationProvider for FragDb {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.rows.relation(name)
    }
    fn chunked(&self, name: &str) -> Option<Arc<ChunkedRelation>> {
        (name == "t").then(|| self.chunked.clone()).flatten()
    }
}

/// A random predicate whose constants cluster around chunk-boundary ids,
/// so zone refutation decides right at min/max edges; IS NULL and
/// NULL-literal comparisons keep Kleene semantics honest.
fn random_predicate(seed: &mut u64, seal_rows: usize, max_id: i64) -> ScalarExpr {
    let boundary = if max_id > 0 {
        let chunk = (next(seed) % (max_id as u64 / seal_rows as u64 + 1)) as i64;
        let jitter = (next(seed) % 3) as i64 - 1; // straddle the zone edge
        chunk * seal_rows as i64 + jitter
    } else {
        0
    };
    let op = match next(seed) % 4 {
        0 => CmpOp::Lt,
        1 => CmpOp::Ge,
        2 => CmpOp::Eq,
        _ => CmpOp::Le,
    };
    let base = ScalarExpr::cmp(op, ScalarExpr::col(0), ScalarExpr::lit(boundary));
    match next(seed) % 5 {
        0 => ScalarExpr::and(
            base,
            ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::col(2),
                ScalarExpr::lit((next(seed) % 100) as f64),
            ),
        ),
        1 => ScalarExpr::IsNull(Box::new(ScalarExpr::col(1))),
        2 => ScalarExpr::and(
            base,
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(1), ScalarExpr::lit(Value::Null)),
        ),
        _ => base,
    }
}

proptest! {
    /// Core storage property: for any mixed sealed/delta state and any
    /// zone-straddling predicate, the pruned chunked scan (serial and
    /// under a 4-worker pool), the unhinted chunked scan and the row
    /// oracle all agree.
    #[test]
    fn pruned_chunked_scan_agrees_with_row_oracle(
        seed in 0u64..u64::MAX,
        seal_rows in 4usize..24,
        n_ops in 10usize..60,
    ) {
        let mut s = seed;
        let frag = drive(&mut s, seal_rows, n_ops);
        let db = FragDb::snapshot(&frag);
        let max_id = frag.len() as i64;

        for _ in 0..4 {
            let pred = random_predicate(&mut s, seal_rows, max_id);
            let plan = LogicalPlan::scan("t", frag_schema()).select(pred);
            let oracle = eval(&plan, &db.rows).unwrap().canonicalized();

            let mut hinted = lower(&plan).unwrap();
            hinted.push_prune_hints();
            let (s0, p0) = prisma_relalg::chunk_scan_counters();
            let got = execute_physical(&hinted, &db).unwrap().canonicalized();
            prop_assert_eq!(&got, &oracle, "hinted scan diverged (seed {})", seed);
            if db.chunked.is_some() {
                // Every sealed chunk was either served or zone-pruned.
                let (s1, p1) = prisma_relalg::chunk_scan_counters();
                prop_assert!(
                    (s1 - s0) + (p1 - p0) >= frag.sealed_count() as u64,
                    "chunked path not exercised (seed {})", seed
                );
            }

            let unhinted = lower(&plan).unwrap();
            let got = execute_physical(&unhinted, &db).unwrap().canonicalized();
            prop_assert_eq!(&got, &oracle, "unhinted scan diverged (seed {})", seed);

            let pool = prisma_poolx::WorkerPool::new(4);
            let pooled: Vec<Tuple> = open_batches_pooled(&hinted, &db, Some(pool))
                .unwrap()
                .drain()
                .unwrap()
                .into_iter()
                .flat_map(Batch::into_tuples)
                .collect();
            let pooled = Relation::new(frag_schema(), pooled).canonicalized();
            prop_assert_eq!(&pooled, &oracle, "pooled scan diverged (seed {})", seed);
        }
    }
}

fn boot(seal_rows: usize) -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: 4,
        topology: TopologyKind::Mesh,
        seal_rows,
        ..MachineConfig::default()
    };
    GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant()).unwrap()
}

/// Apply one random DML step through SQL to both machines.
fn sql_step(seed: &mut u64, next_id: &mut i64, gdhs: [&GlobalDataHandler; 2]) {
    let stmt = match next(seed) % 6 {
        0..=2 => {
            let rows = 1 + next(seed) % 24;
            let mut values = String::new();
            for _ in 0..rows {
                if !values.is_empty() {
                    values.push(',');
                }
                let grp = if next(seed).is_multiple_of(5) {
                    "NULL".to_owned()
                } else {
                    (next(seed) % 4).to_string()
                };
                values.push_str(&format!("({}, {grp}, {}.0)", *next_id, next(seed) % 50));
                *next_id += 1;
            }
            format!("INSERT INTO t VALUES {values}")
        }
        3 => format!("DELETE FROM t WHERE id >= {} AND id < {}",
            next(seed) % 40, next(seed) % 80),
        4 => format!("UPDATE t SET val = {}.0 WHERE grp = {}",
            next(seed) % 50, next(seed) % 4),
        // A scan is a reseal point: the OFM seals eligible deltas first.
        _ => "SELECT COUNT(*) AS n FROM t".to_owned(),
    };
    for gdh in gdhs {
        gdh.execute_sql(&stmt).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end property on both wire formats: after an identical
    /// random DML history, a machine that seals every 4 rows and a
    /// machine that never seals answer zone-straddling queries
    /// identically — row wire and columnar wire alike.
    #[test]
    fn sealed_and_unsealed_machines_agree_over_sql(
        seed in 0u64..u64::MAX,
        n_ops in 4usize..12,
    ) {
        let mut s = seed;
        let mut sealing = boot(4);
        let mut flat = boot(1_000_000);
        for gdh in [&sealing, &flat] {
            gdh.execute_sql("CREATE TABLE t (id INT, grp INT NULL, val DOUBLE) \
                             FRAGMENTED BY HASH(id) INTO 4")
                .unwrap();
        }
        let mut next_id = 0i64;
        for _ in 0..n_ops {
            sql_step(&mut s, &mut next_id, [&sealing, &flat]);
        }
        let boundary = next(&mut s) % (next_id.max(1) as u64);
        let queries = [
            format!("SELECT id, grp, val FROM t WHERE id < {boundary} ORDER BY id"),
            format!("SELECT id FROM t WHERE id >= {boundary} AND val < 25.0 ORDER BY id"),
            "SELECT id FROM t WHERE grp IS NULL ORDER BY id".to_owned(),
            "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp".to_owned(),
        ];
        for columnar in [true, false] {
            sealing.set_columnar_wire(columnar);
            flat.set_columnar_wire(columnar);
            for q in &queries {
                let got = sealing.execute_sql(q).unwrap().rows().unwrap();
                let want = flat.execute_sql(q).unwrap().rows().unwrap();
                prop_assert_eq!(
                    got.tuples(), want.tuples(),
                    "{} diverged (columnar={}, seed {})", q, columnar, seed
                );
            }
        }
        sealing.shutdown();
        flat.shutdown();
    }
}
